/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses: the
 * common machine builder, the ratio / efficiency arithmetic the
 * tables print, and the command-line plumbing every bench accepts:
 *
 *   --nodes=N            machine size (benches with a size knob)
 *   --threads=T          parallel-backend worker threads (0 = auto)
 *   --engine=NAME        auto | wheel | heap | parallel
 *   --protocol=NAME      auto | update | invalidate (docs/PROTOCOLS.md)
 *   --trace-out=<file>   Perfetto JSON trace
 *   --stats-out=<file>   metrics + traffic JSON
 *   --prof-out=<file>    host-time profile JSON (enables plus::prof)
 */

#ifndef PLUS_BENCH_BENCH_UTIL_HPP_
#define PLUS_BENCH_BENCH_UTIL_HPP_

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "plus/plus.hpp"
#include "telemetry/prof.hpp"

namespace plus {
namespace bench {

/** The harness options common to every bench, parsed from argv. */
struct HarnessArgs {
    unsigned nodes = 0;           ///< --nodes=N; 0 = bench default
    unsigned threads = 0;         ///< --threads=T; 0 = auto
    Engine engine = Engine::Auto; ///< --engine=NAME
    Protocol protocol = Protocol::Auto; ///< --protocol=NAME
    std::string traceOut;         ///< --trace-out=<file>
    std::string statsOut;         ///< --stats-out=<file>
    std::string profOut;          ///< --prof-out=<file>
    std::vector<std::string> rest; ///< unrecognized (bench-specific)

    /** @p fallback unless --nodes= was given. */
    unsigned nodesOr(unsigned fallback) const
    {
        return nodes == 0 ? fallback : nodes;
    }

    /** True when any output was requested, i.e. telemetry should run. */
    bool telemetry() const
    {
        return !traceOut.empty() || !statsOut.empty();
    }
};

/** The process-wide options parseHarnessArgs() fills in. */
inline HarnessArgs&
harnessArgs()
{
    static HarnessArgs args;
    return args;
}

/**
 * Consume the common harness options from @p argv into the returned
 * (and process-wide, see harnessArgs()) struct; bench-specific flags
 * land in HarnessArgs::rest. Call once at the top of main;
 * machineBuilder() then applies the engine/threads/telemetry choices
 * automatically. Exits with usage on a malformed common flag.
 */
inline HarnessArgs&
parseHarnessArgs(int argc, char** argv)
{
    HarnessArgs& args = harnessArgs();
    for (int i = 1; i < argc; ++i) {
        const std::string arg(argv[i]);
        if (arg.rfind("--trace-out=", 0) == 0) {
            args.traceOut = arg.substr(12);
        } else if (arg.rfind("--stats-out=", 0) == 0) {
            args.statsOut = arg.substr(12);
        } else if (arg.rfind("--prof-out=", 0) == 0) {
            args.profOut = arg.substr(11);
            prof::enable(true);
        } else if (arg.rfind("--nodes=", 0) == 0) {
            args.nodes = static_cast<unsigned>(std::stoul(arg.substr(8)));
        } else if (arg.rfind("--threads=", 0) == 0) {
            args.threads =
                static_cast<unsigned>(std::stoul(arg.substr(10)));
        } else if (arg.rfind("--engine=", 0) == 0) {
            if (!engineFromString(arg.substr(9), args.engine)) {
                std::cerr << "unknown --engine '" << arg.substr(9)
                          << "' (want auto|wheel|heap|parallel)\n";
                std::exit(2);
            }
        } else if (arg.rfind("--protocol=", 0) == 0) {
            if (!protocolFromString(arg.substr(11), args.protocol)) {
                std::cerr << "unknown --protocol '" << arg.substr(11)
                          << "' (want auto|update|invalidate)\n";
                std::exit(2);
            }
        } else {
            args.rest.push_back(arg);
        }
    }
    return args;
}

/**
 * The machine builder used by the reproduction experiments: the
 * paper's cost model on @p nodes nodes with deep frame reserves, the
 * command line's engine/threads choice, and telemetry armed when any
 * output file was requested. Benches chain further knobs and build().
 */
inline MachineBuilder
machineBuilder(unsigned nodes, ProcessorMode mode = ProcessorMode::Delayed)
{
    return MachineBuilder()
        .nodes(nodes)
        .framesPerNode(4096)
        .mode(mode)
        .engine(harnessArgs().engine)
        .protocol(harnessArgs().protocol)
        .threads(harnessArgs().threads)
        .observer(harnessArgs().telemetry());
}

/**
 * Write the --prof-out host-time profile, if requested. Called by
 * exportTelemetry(); benches that never build a machine (or exit
 * before exportTelemetry) call it directly. No-op otherwise.
 */
inline bool
exportProf()
{
    const HarnessArgs& args = harnessArgs();
    if (args.profOut.empty()) {
        return true;
    }
    std::ofstream os(args.profOut);
    if (!os) {
        std::cerr << "cannot open " << args.profOut << "\n";
        return false;
    }
    prof::writeJson(os);
    return true;
}

/**
 * Write the files requested on the command line from @p machine's
 * telemetry. Benches that build several machines call this on the one
 * the files should describe (conventionally the last run); each call
 * overwrites. No-op when no output was requested.
 */
inline bool
exportTelemetry(const core::Machine& machine)
{
    const HarnessArgs& args = harnessArgs();
    if (!args.traceOut.empty() && machine.telemetry() != nullptr) {
        std::ofstream os(args.traceOut);
        if (!os) {
            std::cerr << "cannot open " << args.traceOut << "\n";
            return false;
        }
        machine.writeTraceJson(os);
    }
    if (!args.statsOut.empty()) {
        std::ofstream os(args.statsOut);
        if (!os) {
            std::cerr << "cannot open " << args.statsOut << "\n";
            return false;
        }
        machine.writeStatsJson(os);
    }
    return exportProf();
}

/** Ratio of local to remote operations as Table 2-1 prints it. */
inline double
localRemoteRatio(std::uint64_t local, std::uint64_t remote)
{
    return remote == 0 ? static_cast<double>(local)
                       : static_cast<double>(local) /
                             static_cast<double>(remote);
}

/** num/den with a zero denominator mapped to 0 (slowdowns, speedups). */
inline double
ratioOf(double num, double den)
{
    return den == 0 ? 0.0 : num / den;
}

/** Parallel efficiency t1 / (n * tn) against a one-processor baseline. */
inline double
efficiency(Cycles t1, unsigned nodes, Cycles tn)
{
    return ratioOf(static_cast<double>(t1),
                   static_cast<double>(nodes) * static_cast<double>(tn));
}

/** "+x.y%" overhead of @p other relative to @p base. */
inline std::string
percentDelta(Cycles base, Cycles other)
{
    return TablePrinter::num(
               100.0 * (ratioOf(static_cast<double>(other),
                                static_cast<double>(base)) -
                        1.0),
               1) +
           "%";
}

inline void
printHeader(const std::string& what, const std::string& paper_ref)
{
    std::cout << "\n=== " << what << " ===\n"
              << "Reproduces: " << paper_ref << "\n"
              << "(absolute numbers differ from the 1990 testbed; the "
                 "trends are the result)\n\n";
}

/** Print @p table followed by the closing commentary every bench ends
 *  with (pass "" for none). */
inline void
finishTable(TablePrinter& table, const std::string& note = "")
{
    table.print(std::cout);
    std::cout << "\n";
    if (!note.empty()) {
        std::cout << note << "\n\n";
    }
}

} // namespace bench
} // namespace plus

#endif // PLUS_BENCH_BENCH_UTIL_HPP_
