/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses: the
 * common machine configuration, the ratio / efficiency arithmetic the
 * tables print, and the telemetry command-line plumbing
 * (--trace-out=<file> / --stats-out=<file>) every bench accepts.
 */

#ifndef PLUS_BENCH_BENCH_UTIL_HPP_
#define PLUS_BENCH_BENCH_UTIL_HPP_

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/machine.hpp"

namespace plus {
namespace bench {

/** Telemetry outputs requested on the command line. */
struct HarnessOptions {
    std::string traceOut; ///< --trace-out=<file>: Perfetto JSON trace
    std::string statsOut; ///< --stats-out=<file>: metrics + traffic JSON

    /** True when any output was requested, i.e. telemetry should run. */
    bool telemetry() const
    {
        return !traceOut.empty() || !statsOut.empty();
    }
};

/** The process-wide options parseHarnessArgs() fills in. */
inline HarnessOptions&
harnessOptions()
{
    static HarnessOptions opts;
    return opts;
}

/**
 * Consume the harness options from @p argv and return whatever remains
 * (bench-specific flags, minus argv[0]). Call once at the top of main;
 * machineConfig() then enables event tracing automatically.
 */
inline std::vector<std::string>
parseHarnessArgs(int argc, char** argv)
{
    std::vector<std::string> rest;
    for (int i = 1; i < argc; ++i) {
        const std::string arg(argv[i]);
        if (arg.rfind("--trace-out=", 0) == 0) {
            harnessOptions().traceOut = arg.substr(12);
        } else if (arg.rfind("--stats-out=", 0) == 0) {
            harnessOptions().statsOut = arg.substr(12);
        } else {
            rest.push_back(arg);
        }
    }
    return rest;
}

/** Machine configuration used by the reproduction experiments. */
inline MachineConfig
machineConfig(unsigned nodes, ProcessorMode mode = ProcessorMode::Delayed)
{
    MachineConfig cfg;
    cfg.nodes = nodes;
    cfg.framesPerNode = 4096;
    cfg.mode = mode;
    cfg.telemetry.trace = harnessOptions().telemetry();
    return cfg;
}

/**
 * Write the files requested on the command line from @p machine's
 * telemetry. Benches that build several machines call this on the one
 * the files should describe (conventionally the last run); each call
 * overwrites. No-op when no output was requested.
 */
inline bool
exportTelemetry(const core::Machine& machine)
{
    const HarnessOptions& opts = harnessOptions();
    if (!opts.traceOut.empty() && machine.telemetry() != nullptr) {
        std::ofstream os(opts.traceOut);
        if (!os) {
            std::cerr << "cannot open " << opts.traceOut << "\n";
            return false;
        }
        machine.writeTraceJson(os);
    }
    if (!opts.statsOut.empty()) {
        std::ofstream os(opts.statsOut);
        if (!os) {
            std::cerr << "cannot open " << opts.statsOut << "\n";
            return false;
        }
        machine.writeStatsJson(os);
    }
    return true;
}

/** Ratio of local to remote operations as Table 2-1 prints it. */
inline double
localRemoteRatio(std::uint64_t local, std::uint64_t remote)
{
    return remote == 0 ? static_cast<double>(local)
                       : static_cast<double>(local) /
                             static_cast<double>(remote);
}

/** num/den with a zero denominator mapped to 0 (slowdowns, speedups). */
inline double
ratioOf(double num, double den)
{
    return den == 0 ? 0.0 : num / den;
}

/** Parallel efficiency t1 / (n * tn) against a one-processor baseline. */
inline double
efficiency(Cycles t1, unsigned nodes, Cycles tn)
{
    return ratioOf(static_cast<double>(t1),
                   static_cast<double>(nodes) * static_cast<double>(tn));
}

/** "+x.y%" overhead of @p other relative to @p base. */
inline std::string
percentDelta(Cycles base, Cycles other)
{
    return TablePrinter::num(
               100.0 * (ratioOf(static_cast<double>(other),
                                static_cast<double>(base)) -
                        1.0),
               1) +
           "%";
}

inline void
printHeader(const std::string& what, const std::string& paper_ref)
{
    std::cout << "\n=== " << what << " ===\n"
              << "Reproduces: " << paper_ref << "\n"
              << "(absolute numbers differ from the 1990 testbed; the "
                 "trends are the result)\n\n";
}

/** Print @p table followed by the closing commentary every bench ends
 *  with (pass "" for none). */
inline void
finishTable(TablePrinter& table, const std::string& note = "")
{
    table.print(std::cout);
    std::cout << "\n";
    if (!note.empty()) {
        std::cout << note << "\n\n";
    }
}

} // namespace bench
} // namespace plus

#endif // PLUS_BENCH_BENCH_UTIL_HPP_
