/**
 * @file
 * The production-system workload under growing replication of its
 * read-mostly match index: the read-dominated member of the paper's
 * application suite is where non-demand replication pays off most
 * directly — remote match probes become local reads while the
 * interlocked assertion traffic stays constant.
 */

#include <iostream>

#include "bench/bench_util.hpp"
#include "workloads/production.hpp"

int
main(int argc, char** argv)
{
    using namespace plus;
    using namespace plus::bench;
    parseHarnessArgs(argc, argv);

    printHeader("Production system vs replication",
                "forward chaining, 16 processors, match index replicated");

    TablePrinter table;
    table.setHeader({"Copies", "cycles", "speedup", "Reads L/R",
                     "updates"});
    Cycles base = 0;
    for (unsigned copies : {1u, 2u, 3u, 4u, 5u}) {
        auto machine_ptr = machineBuilder(16).build();
        core::Machine& machine = *machine_ptr;
        workloads::ProductionConfig cfg;
        cfg.facts = 2048;
        cfg.rules = 6144;
        cfg.initialFacts = 16;
        cfg.seed = 20260708;
        cfg.replication = copies;
        const workloads::ProductionResult r =
            runProduction(machine, cfg);
        if (!r.correct) {
            std::cerr << "FAILED: closure incorrect at replication "
                      << copies << "\n";
            return 1;
        }
        if (copies == 1) {
            base = r.elapsed;
        }
        if (copies == 5) {
            exportTelemetry(machine);
        }
        table.addRow(
            {std::to_string(copies), TablePrinter::num(r.elapsed),
             TablePrinter::num(ratioOf(static_cast<double>(base),
                                       static_cast<double>(r.elapsed))),
             TablePrinter::num(localRemoteRatio(r.report.localReads,
                                                r.report.remoteReads)),
             TablePrinter::num(r.report.updateMessages)});
    }
    finishTable(table,
                "Expected: the local/remote read ratio climbs with "
                "copies and the run gets faster,\nwhile update traffic "
                "stays modest (the replicated pages are read-mostly).");
    return 0;
}
