/**
 * @file
 * Property tests of the coherence protocol's central guarantee —
 * *general coherence*: because every write takes effect at the master
 * first and propagates down the ordered copy-list, all copies of a
 * location are written in the same order and converge to identical
 * contents once all writes complete. Random concurrent workloads from
 * many nodes must therefore leave every copy of every page bit-identical,
 * and per-processor program order must hold for a processor's own reads.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/context.hpp"
#include "core/machine.hpp"

namespace plus {
namespace core {
namespace {

MachineConfig
cfgFor(unsigned nodes)
{
    MachineConfig cfg;
    cfg.nodes = nodes;
    cfg.framesPerNode = 64;
    return cfg;
}

/** Check every copy of @p page equals the master, word for word. */
void
expectCopiesConverged(Machine& m, Addr page)
{
    const mem::CopyList& cl = m.copyListOf(page);
    const PhysPage master = cl.master();
    for (const PhysPage& copy : cl.copies()) {
        for (Addr w = 0; w < kPageWords; ++w) {
            const Word expect =
                m.nodeAt(master.node).memory().read(master.frame, w);
            const Word got = m.nodeAt(copy.node).memory().read(copy.frame,
                                                               w);
            ASSERT_EQ(got, expect)
                << "word " << w << " diverged on node " << copy.node;
        }
    }
}

struct ConvergenceParam {
    unsigned nodes;
    unsigned copies;
    std::uint64_t seed;
};

class Convergence : public ::testing::TestWithParam<ConvergenceParam>
{
};

TEST_P(Convergence, RandomWritesLeaveAllCopiesIdentical)
{
    const ConvergenceParam p = GetParam();
    Machine m(cfgFor(p.nodes));
    const Addr page = m.alloc(kPageBytes, 0);
    for (unsigned c = 1; c < p.copies; ++c) {
        m.replicate(page, c % p.nodes);
    }
    m.settle();

    for (NodeId n = 0; n < p.nodes; ++n) {
        m.spawn(n, [&, n](Context& ctx) {
            Xoshiro256 rng(p.seed * 1000 + n);
            for (int i = 0; i < 120; ++i) {
                const Addr addr =
                    page + 4 * (rng.below(64)); // contended words
                switch (rng.below(5)) {
                  case 0:
                    ctx.write(addr, static_cast<Word>(rng()));
                    break;
                  case 1:
                    ctx.fadd(addr, static_cast<Word>(rng.below(100)));
                    break;
                  case 2:
                    ctx.xchng(addr,
                              static_cast<Word>(rng()) & kPayloadMask);
                    break;
                  case 3:
                    ctx.minXchng(addr,
                                 static_cast<Word>(rng()) & kPayloadMask);
                    break;
                  default:
                    ctx.read(addr);
                    break;
                }
                if (rng.below(16) == 0) {
                    ctx.fence();
                }
            }
            ctx.fence();
        });
    }
    m.run();
    m.settle(); // drain the last update chains

    expectCopiesConverged(m, page);
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, Convergence,
    ::testing::Values(ConvergenceParam{2, 2, 1},
                      ConvergenceParam{4, 3, 2},
                      ConvergenceParam{4, 4, 3},
                      ConvergenceParam{8, 5, 4},
                      ConvergenceParam{9, 9, 5},
                      ConvergenceParam{16, 8, 6},
                      ConvergenceParam{16, 16, 7}),
    [](const ::testing::TestParamInfo<ConvergenceParam>& info) {
        return "n" + std::to_string(info.param.nodes) + "_c" +
               std::to_string(info.param.copies) + "_s" +
               std::to_string(info.param.seed);
    });

TEST(Coherence, FetchAddsNeverLostAcrossManyNodesAndCopies)
{
    // Interlocked increments execute atomically at the master: no update
    // may be lost regardless of replication or contention.
    constexpr unsigned kNodes = 9;
    Machine m(cfgFor(kNodes));
    const Addr page = m.alloc(kPageBytes, 4);
    for (NodeId n = 0; n < kNodes; ++n) {
        if (n != 4) {
            m.replicate(page, n);
        }
    }
    m.settle();
    for (NodeId n = 0; n < kNodes; ++n) {
        m.spawn(n, [&](Context& ctx) {
            for (int i = 0; i < 50; ++i) {
                ctx.fadd(page, 1);
            }
        });
    }
    m.run();
    m.settle();
    EXPECT_EQ(m.peek(page), kNodes * 50u);
    expectCopiesConverged(m, page);
}

TEST(Coherence, ProgramOrderVisibleToOwnReads)
{
    // Strong ordering within one processor: a processor always sees its
    // own writes in order, even mid-propagation on a replicated page.
    Machine m(cfgFor(4));
    const Addr page = m.alloc(kPageBytes, 1);
    m.replicate(page, 2);
    m.replicate(page, 3);
    m.settle();
    bool ok = true;
    m.spawn(0, [&](Context& ctx) {
        for (Word i = 1; i <= 200; ++i) {
            ctx.write(page + 4 * (i % 8), i);
            if (ctx.read(page + 4 * (i % 8)) != i) {
                ok = false;
            }
        }
    });
    m.run();
    EXPECT_TRUE(ok);
}

TEST(Coherence, MinXchngConvergesToGlobalMinimum)
{
    constexpr unsigned kNodes = 8;
    Machine m(cfgFor(kNodes));
    const Addr page = m.alloc(kPageBytes, 0);
    m.poke(page, kPayloadMask);
    for (NodeId n = 1; n < 4; ++n) {
        m.replicate(page, n);
    }
    m.settle();
    for (NodeId n = 0; n < kNodes; ++n) {
        m.spawn(n, [&, n](Context& ctx) {
            Xoshiro256 rng(n + 100);
            for (int i = 0; i < 60; ++i) {
                ctx.minXchng(page,
                             static_cast<Word>(rng.below(kPayloadMask)));
            }
            // The known global floor arrives from node 5 only.
            if (n == 5) {
                ctx.minXchng(page, 3);
            }
        });
    }
    m.run();
    m.settle();
    EXPECT_EQ(m.peek(page), 3u);
    expectCopiesConverged(m, page);
}

TEST(Coherence, UpdateChainsAreFifoPerRoute)
{
    // Two back-to-back writes by one processor to the same replicated
    // word must land in issue order on every copy (general coherence);
    // run many rounds to expose reordering.
    Machine m(cfgFor(4));
    const Addr page = m.alloc(kPageBytes, 1);
    m.replicate(page, 2);
    m.replicate(page, 3);
    m.settle();
    m.spawn(0, [&](Context& ctx) {
        for (Word i = 0; i < 100; ++i) {
            ctx.write(page, 2 * i);
            ctx.write(page, 2 * i + 1);
        }
        ctx.fence();
    });
    m.run();
    m.settle();
    // The final value everywhere must be the last write.
    for (const PhysPage& copy : m.copyListOf(page).copies()) {
        EXPECT_EQ(m.nodeAt(copy.node).memory().read(copy.frame, 0), 199u);
    }
}

TEST(Coherence, OnlineReplicationDuringRandomTrafficStaysCoherent)
{
    // Pages grow replicas *while* random writers hammer them; after the
    // dust settles every copy must be identical and no interlocked
    // increment may be lost.
    constexpr unsigned kNodes = 8;
    Machine m(cfgFor(kNodes));
    const Addr page = m.alloc(kPageBytes, 0);
    const Addr counter = m.alloc(kPageBytes, 3);

    for (NodeId n = 0; n < kNodes; ++n) {
        m.spawn(n, [&, n](Context& ctx) {
            Xoshiro256 rng(n + 500);
            for (int i = 0; i < 100; ++i) {
                ctx.write(page + 4 * rng.below(32),
                          static_cast<Word>(rng()));
                ctx.fadd(counter, 1);
                ctx.compute(10);
                // Mid-run, node n requests a replica for itself at a
                // random moment (the OS call is an online operation).
                if (i == static_cast<int>(20 + 5 * n)) {
                    ctx.machine().replicate(page, n);
                }
            }
            ctx.fence();
        });
    }
    m.run();
    m.settle();

    EXPECT_GE(m.copyListOf(page).size(), 2u);
    EXPECT_EQ(m.peek(counter), kNodes * 100u);
    expectCopiesConverged(m, page);
}

} // namespace
} // namespace core
} // namespace plus
