/**
 * @file
 * Unit tests for the discrete-event engine: ordering, determinism,
 * cancellation, and time-limit semantics.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/panic.hpp"
#include "sim/engine.hpp"

namespace plus {
namespace sim {
namespace {

TEST(Engine, StartsAtCycleZero)
{
    Engine engine;
    EXPECT_EQ(engine.now(), 0u);
    EXPECT_EQ(engine.pendingEvents(), 0u);
}

TEST(Engine, RunsEventsInTimeOrder)
{
    Engine engine;
    std::vector<int> order;
    engine.schedule(30, [&] { order.push_back(3); });
    engine.schedule(10, [&] { order.push_back(1); });
    engine.schedule(20, [&] { order.push_back(2); });
    engine.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(engine.now(), 30u);
}

TEST(Engine, TiesBreakInScheduleOrder)
{
    Engine engine;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        engine.schedule(5, [&order, i] { order.push_back(i); });
    }
    engine.run();
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(order[i], i);
    }
}

TEST(Engine, NowAdvancesToEventTime)
{
    Engine engine;
    Cycles seen = 0;
    engine.schedule(42, [&] { seen = engine.now(); });
    engine.run();
    EXPECT_EQ(seen, 42u);
}

TEST(Engine, EventsCanReschedule)
{
    Engine engine;
    int fired = 0;
    std::function<void()> tick = [&] {
        ++fired;
        if (fired < 5) {
            engine.schedule(10, tick);
        }
    };
    engine.schedule(10, tick);
    engine.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(engine.now(), 50u);
}

TEST(Engine, CancelPreventsExecution)
{
    Engine engine;
    bool ran = false;
    const EventId id = engine.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(engine.cancel(id));
    engine.run();
    EXPECT_FALSE(ran);
}

TEST(Engine, CancelTwiceReturnsFalse)
{
    Engine engine;
    const EventId id = engine.schedule(10, [] {});
    EXPECT_TRUE(engine.cancel(id));
    EXPECT_FALSE(engine.cancel(id));
}

TEST(Engine, CancelUnknownIdReturnsFalse)
{
    Engine engine;
    EXPECT_FALSE(engine.cancel(kInvalidEvent));
    EXPECT_FALSE(engine.cancel(9999));
}

TEST(Engine, RunUntilStopsAtLimit)
{
    Engine engine;
    std::vector<Cycles> fired;
    engine.schedule(10, [&] { fired.push_back(10); });
    engine.schedule(20, [&] { fired.push_back(20); });
    engine.schedule(30, [&] { fired.push_back(30); });
    engine.runUntil(20);
    EXPECT_EQ(fired, (std::vector<Cycles>{10, 20}));
    EXPECT_EQ(engine.now(), 20u);
    engine.run();
    EXPECT_EQ(fired.size(), 3u);
}

TEST(Engine, RunUntilKeepsTimeAtLastEvent)
{
    Engine engine;
    engine.schedule(5, [] {});
    engine.runUntil(100);
    EXPECT_EQ(engine.now(), 5u);
}

TEST(Engine, StopHaltsTheLoop)
{
    Engine engine;
    int fired = 0;
    engine.schedule(10, [&] {
        ++fired;
        engine.stop();
    });
    engine.schedule(20, [&] { ++fired; });
    engine.run();
    EXPECT_EQ(fired, 1);
    engine.run();
    EXPECT_EQ(fired, 2);
}

TEST(Engine, StepExecutesExactlyOneEvent)
{
    Engine engine;
    int fired = 0;
    engine.schedule(1, [&] { ++fired; });
    engine.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(engine.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(engine.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(engine.step());
}

TEST(Engine, SchedulingInThePastPanics)
{
    Engine engine;
    engine.schedule(10, [&] {
        EXPECT_THROW(engine.scheduleAt(5, [] {}), PanicError);
    });
    engine.run();
}

TEST(Engine, CountsExecutedEvents)
{
    Engine engine;
    for (int i = 0; i < 7; ++i) {
        engine.schedule(i, [] {});
    }
    engine.run();
    EXPECT_EQ(engine.executedEvents(), 7u);
}

TEST(Engine, PendingExcludesCancelled)
{
    Engine engine;
    engine.schedule(1, [] {});
    const EventId id = engine.schedule(2, [] {});
    EXPECT_EQ(engine.pendingEvents(), 2u);
    engine.cancel(id);
    EXPECT_EQ(engine.pendingEvents(), 1u);
}

TEST(Engine, RandomScheduleCancelIsDeterministic)
{
    // Property: two engines fed the same pseudo-random schedule/cancel
    // stream execute the same events at the same times.
    auto run = [] {
        sim::Engine engine;
        std::vector<std::pair<Cycles, int>> log;
        std::uint64_t state = 12345;
        auto next = [&state] {
            state = state * 6364136223846793005ull + 1442695040888963407ull;
            return state >> 33;
        };
        std::vector<EventId> ids;
        for (int i = 0; i < 200; ++i) {
            const Cycles delay = next() % 50;
            ids.push_back(engine.schedule(
                delay, [&log, &engine, i] {
                    log.push_back({engine.now(), i});
                }));
            if (next() % 4 == 0 && !ids.empty()) {
                engine.cancel(ids[next() % ids.size()]);
            }
        }
        engine.run();
        return log;
    };
    EXPECT_EQ(run(), run());
}

TEST(Engine, CancelOfFiredIdReturnsFalse)
{
    Engine engine;
    const EventId id = engine.schedule(10, [] {});
    engine.run();
    EXPECT_FALSE(engine.cancel(id));
    // The slot is recycled: the stale id must not cancel its successor.
    bool ran = false;
    engine.schedule(5, [&] { ran = true; });
    EXPECT_FALSE(engine.cancel(id));
    engine.run();
    EXPECT_TRUE(ran);
}

TEST(Engine, ScheduleAtNowExecutesThisCycle)
{
    Engine engine;
    std::vector<int> order;
    engine.schedule(10, [&] {
        order.push_back(1);
        engine.scheduleAt(engine.now(), [&] { order.push_back(2); });
    });
    engine.schedule(10, [&] { order.push_back(3); });
    engine.runUntil(10);
    // The same-cycle event runs within this cycle, after already-queued
    // ties (FIFO), and not past the limit.
    EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
    EXPECT_EQ(engine.now(), 10u);
}

TEST(Engine, RunUntilBoundaryAcrossCascade)
{
    // Limits landing exactly on wheel-window edges (64, 4096) must
    // still execute events at the limit and hold back the rest.
    for (const EngineImpl impl : {EngineImpl::Wheel, EngineImpl::Heap}) {
        Engine engine(impl);
        std::vector<Cycles> fired;
        for (const Cycles when : {Cycles{63}, Cycles{64}, Cycles{65},
                                  Cycles{4095}, Cycles{4096},
                                  Cycles{4097}}) {
            engine.scheduleAt(when, [&fired, when] {
                fired.push_back(when);
            });
        }
        engine.runUntil(64);
        EXPECT_EQ(fired, (std::vector<Cycles>{63, 64})) << "impl wheel="
            << (impl == EngineImpl::Wheel);
        engine.runUntil(4096);
        EXPECT_EQ(fired,
                  (std::vector<Cycles>{63, 64, 65, 4095, 4096}));
        engine.run();
        EXPECT_EQ(fired.size(), 6u);
        EXPECT_EQ(engine.now(), 4097u);
    }
}

TEST(Engine, FifoTieBreakAcrossCascade)
{
    // Events due the same far cycle, scheduled from different points in
    // time (so they enter the wheel at different levels and cascade a
    // different number of times), still fire in issue order.
    Engine engine;
    std::vector<int> order;
    const Cycles target = 4161; // crosses two window boundaries
    engine.scheduleAt(target, [&] { order.push_back(0); });
    engine.schedule(50, [&] {
        engine.scheduleAt(target, [&] { order.push_back(1); });
    });
    engine.schedule(4100, [&] {
        engine.scheduleAt(target, [&] { order.push_back(2); });
    });
    engine.schedule(4160, [&] {
        engine.scheduleAt(target, [&] { order.push_back(3); });
    });
    engine.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(engine.now(), target);
}

TEST(Engine, Cancel10kEventsStaysBounded)
{
    // Regression: cancelled events used to linger in the queue and in a
    // tombstone set until lazily popped. With generation counters they
    // are purged eagerly and their records recycled.
    Engine engine;
    std::vector<EventId> ids;
    ids.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
        ids.push_back(engine.schedule(1000 + i % 97, [] {}));
    }
    for (const EventId id : ids) {
        EXPECT_TRUE(engine.cancel(id));
    }
    EXPECT_EQ(engine.pendingEvents(), 0u);
    EXPECT_EQ(engine.stats().cancelled, 10000u);
    EXPECT_EQ(engine.stats().slabLive, 0u);

    // Schedule/cancel churn reuses the freed records: no growth.
    const std::size_t slots = engine.stats().slabSlots;
    for (int i = 0; i < 10000; ++i) {
        engine.cancel(engine.schedule(50, [] {}));
    }
    EXPECT_EQ(engine.stats().slabSlots, slots);
    EXPECT_EQ(engine.pendingEvents(), 0u);
    engine.run();
    EXPECT_EQ(engine.executedEvents(), 0u);
}

TEST(Engine, PreCursorScheduleAfterRunUntilProbe)
{
    // runUntil() may cascade the wheel past now() while probing whether
    // the next event exceeds the limit; events scheduled into that gap
    // must still run, in (when, seq) order, before the far event.
    Engine engine;
    std::vector<Cycles> fired;
    engine.schedule(5, [&] { fired.push_back(5); });
    engine.schedule(5000, [&] { fired.push_back(5000); });
    engine.runUntil(4999);
    EXPECT_EQ(engine.now(), 5u);
    EXPECT_EQ(fired, (std::vector<Cycles>{5}));

    engine.scheduleAt(6, [&] { fired.push_back(6); });
    engine.scheduleAt(7, [&] { fired.push_back(7); });
    const EventId dropped = engine.scheduleAt(8, [&] { fired.push_back(8); });
    EXPECT_TRUE(engine.cancel(dropped));
    EXPECT_EQ(engine.pendingEvents(), 3u);
    engine.run();
    EXPECT_EQ(fired, (std::vector<Cycles>{5, 6, 7, 5000}));
}

TEST(Engine, MoveOnlyAndLargeCapturesExecute)
{
    Engine engine;
    // Move-only capture (rejected by std::function, accepted by Event).
    auto owned = std::make_unique<int>(41);
    int seen = 0;
    engine.schedule(1, [&seen, p = std::move(owned)] { seen = *p + 1; });
    // Oversized capture: falls back to one heap cell, still runs.
    struct Big {
        char bytes[96] = {};
    } big;
    big.bytes[0] = 7;
    bool bigRan = false;
    engine.schedule(2, [&bigRan, big] { bigRan = big.bytes[0] == 7; });
    engine.run();
    EXPECT_EQ(seen, 42);
    EXPECT_TRUE(bigRan);
}

TEST(Engine, StatsCountCascadesAndHighWater)
{
    Engine engine(EngineImpl::Wheel);
    engine.schedule(70, [] {}); // level 1 -> cascades on dispatch
    engine.schedule(1, [] {});
    EXPECT_EQ(engine.stats().slabHighWater, 2u);
    engine.run();
    const EngineStats stats = engine.stats();
    EXPECT_EQ(stats.scheduled, 2u);
    EXPECT_EQ(stats.executed, 2u);
    EXPECT_GE(stats.cascades, 1u);
    EXPECT_EQ(stats.slabLive, 0u);
}

TEST(Engine, WheelAndHeapBackendsExecuteIdentically)
{
    // Determinism oracle: the same pseudo-random schedule/cancel stream
    // (with runUntil checkpoints) produces identical execution logs on
    // both backends.
    auto run = [](EngineImpl impl) {
        Engine engine(impl);
        std::vector<std::pair<Cycles, int>> log;
        std::uint64_t state = 98765;
        auto next = [&state] {
            state = state * 6364136223846793005ull + 1442695040888963407ull;
            return state >> 33;
        };
        std::vector<EventId> ids;
        for (int round = 0; round < 8; ++round) {
            for (int i = 0; i < 100; ++i) {
                const int tag = round * 100 + i;
                const Cycles delay = next() % 5000;
                ids.push_back(engine.schedule(
                    delay, [&log, &engine, tag] {
                        log.push_back({engine.now(), tag});
                    }));
                if (next() % 4 == 0) {
                    engine.cancel(ids[next() % ids.size()]);
                }
            }
            engine.runUntil(engine.now() + next() % 2000);
        }
        engine.run();
        return log;
    };
    EXPECT_EQ(run(EngineImpl::Wheel), run(EngineImpl::Heap));
}

} // namespace
} // namespace sim
} // namespace plus
