/**
 * @file
 * Unit tests for the discrete-event engine: ordering, determinism,
 * cancellation, and time-limit semantics.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/panic.hpp"
#include "sim/engine.hpp"

namespace plus {
namespace sim {
namespace {

TEST(Engine, StartsAtCycleZero)
{
    Engine engine;
    EXPECT_EQ(engine.now(), 0u);
    EXPECT_EQ(engine.pendingEvents(), 0u);
}

TEST(Engine, RunsEventsInTimeOrder)
{
    Engine engine;
    std::vector<int> order;
    engine.schedule(30, [&] { order.push_back(3); });
    engine.schedule(10, [&] { order.push_back(1); });
    engine.schedule(20, [&] { order.push_back(2); });
    engine.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(engine.now(), 30u);
}

TEST(Engine, TiesBreakInScheduleOrder)
{
    Engine engine;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        engine.schedule(5, [&order, i] { order.push_back(i); });
    }
    engine.run();
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(order[i], i);
    }
}

TEST(Engine, NowAdvancesToEventTime)
{
    Engine engine;
    Cycles seen = 0;
    engine.schedule(42, [&] { seen = engine.now(); });
    engine.run();
    EXPECT_EQ(seen, 42u);
}

TEST(Engine, EventsCanReschedule)
{
    Engine engine;
    int fired = 0;
    std::function<void()> tick = [&] {
        ++fired;
        if (fired < 5) {
            engine.schedule(10, tick);
        }
    };
    engine.schedule(10, tick);
    engine.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(engine.now(), 50u);
}

TEST(Engine, CancelPreventsExecution)
{
    Engine engine;
    bool ran = false;
    const EventId id = engine.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(engine.cancel(id));
    engine.run();
    EXPECT_FALSE(ran);
}

TEST(Engine, CancelTwiceReturnsFalse)
{
    Engine engine;
    const EventId id = engine.schedule(10, [] {});
    EXPECT_TRUE(engine.cancel(id));
    EXPECT_FALSE(engine.cancel(id));
}

TEST(Engine, CancelUnknownIdReturnsFalse)
{
    Engine engine;
    EXPECT_FALSE(engine.cancel(kInvalidEvent));
    EXPECT_FALSE(engine.cancel(9999));
}

TEST(Engine, RunUntilStopsAtLimit)
{
    Engine engine;
    std::vector<Cycles> fired;
    engine.schedule(10, [&] { fired.push_back(10); });
    engine.schedule(20, [&] { fired.push_back(20); });
    engine.schedule(30, [&] { fired.push_back(30); });
    engine.runUntil(20);
    EXPECT_EQ(fired, (std::vector<Cycles>{10, 20}));
    EXPECT_EQ(engine.now(), 20u);
    engine.run();
    EXPECT_EQ(fired.size(), 3u);
}

TEST(Engine, RunUntilKeepsTimeAtLastEvent)
{
    Engine engine;
    engine.schedule(5, [] {});
    engine.runUntil(100);
    EXPECT_EQ(engine.now(), 5u);
}

TEST(Engine, StopHaltsTheLoop)
{
    Engine engine;
    int fired = 0;
    engine.schedule(10, [&] {
        ++fired;
        engine.stop();
    });
    engine.schedule(20, [&] { ++fired; });
    engine.run();
    EXPECT_EQ(fired, 1);
    engine.run();
    EXPECT_EQ(fired, 2);
}

TEST(Engine, StepExecutesExactlyOneEvent)
{
    Engine engine;
    int fired = 0;
    engine.schedule(1, [&] { ++fired; });
    engine.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(engine.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(engine.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(engine.step());
}

TEST(Engine, SchedulingInThePastPanics)
{
    Engine engine;
    engine.schedule(10, [&] {
        EXPECT_THROW(engine.scheduleAt(5, [] {}), PanicError);
    });
    engine.run();
}

TEST(Engine, CountsExecutedEvents)
{
    Engine engine;
    for (int i = 0; i < 7; ++i) {
        engine.schedule(i, [] {});
    }
    engine.run();
    EXPECT_EQ(engine.executedEvents(), 7u);
}

TEST(Engine, PendingExcludesCancelled)
{
    Engine engine;
    engine.schedule(1, [] {});
    const EventId id = engine.schedule(2, [] {});
    EXPECT_EQ(engine.pendingEvents(), 2u);
    engine.cancel(id);
    EXPECT_EQ(engine.pendingEvents(), 1u);
}

TEST(Engine, RandomScheduleCancelIsDeterministic)
{
    // Property: two engines fed the same pseudo-random schedule/cancel
    // stream execute the same events at the same times.
    auto run = [] {
        sim::Engine engine;
        std::vector<std::pair<Cycles, int>> log;
        std::uint64_t state = 12345;
        auto next = [&state] {
            state = state * 6364136223846793005ull + 1442695040888963407ull;
            return state >> 33;
        };
        std::vector<EventId> ids;
        for (int i = 0; i < 200; ++i) {
            const Cycles delay = next() % 50;
            ids.push_back(engine.schedule(
                delay, [&log, &engine, i] {
                    log.push_back({engine.now(), i});
                }));
            if (next() % 4 == 0 && !ids.empty()) {
                engine.cancel(ids[next() % ids.size()]);
            }
        }
        engine.run();
        return log;
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace sim
} // namespace plus
