/**
 * @file
 * Correctness tests for the parallel shortest-path workload: the PLUS
 * implementation must compute exactly Dijkstra's distances under every
 * processor count, replication level, and latency-hiding mode.
 */

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "core/machine.hpp"
#include "workloads/sssp.hpp"

namespace plus {
namespace workloads {
namespace {

MachineConfig
cfgFor(unsigned nodes, ProcessorMode mode = ProcessorMode::Delayed)
{
    MachineConfig cfg;
    cfg.nodes = nodes;
    cfg.framesPerNode = 512;
    cfg.mode = mode;
    return cfg;
}

TEST(Graph, DijkstraOnKnownGraph)
{
    Graph g(4);
    g.addEdge(0, 1, 5);
    g.addEdge(0, 2, 2);
    g.addEdge(1, 3, 1);
    g.addEdge(2, 1, 1);
    g.addEdge(2, 3, 7);
    g.seal();
    const auto dist = dijkstra(g, 0);
    EXPECT_EQ(dist[0], 0u);
    EXPECT_EQ(dist[1], 3u);
    EXPECT_EQ(dist[2], 2u);
    EXPECT_EQ(dist[3], 4u);
}

TEST(Graph, RandomGraphIsConnectedFromSource)
{
    Xoshiro256 rng(7);
    const Graph g = makeRandomGraph(300, 3.0, 50, rng);
    const auto dist = dijkstra(g, 0);
    for (std::uint32_t v = 0; v < g.vertices(); ++v) {
        EXPECT_LT(dist[v], kInfDist) << "vertex " << v << " unreachable";
    }
}

TEST(Graph, GeneratorIsDeterministic)
{
    Xoshiro256 a(42);
    Xoshiro256 b(42);
    const Graph ga = makeRandomGraph(100, 4.0, 30, a);
    const Graph gb = makeRandomGraph(100, 4.0, 30, b);
    ASSERT_EQ(ga.edges(), gb.edges());
    EXPECT_EQ(dijkstra(ga, 0), dijkstra(gb, 0));
}

TEST(Sssp, SingleNodeMatchesDijkstra)
{
    core::Machine m(cfgFor(1));
    SsspConfig cfg;
    cfg.vertices = 256;
    const SsspResult r = runSssp(m, cfg);
    EXPECT_TRUE(r.correct);
    EXPECT_GT(r.elapsed, 0u);
}

TEST(Sssp, FourNodesMatchesDijkstra)
{
    core::Machine m(cfgFor(4));
    SsspConfig cfg;
    cfg.vertices = 256;
    const SsspResult r = runSssp(m, cfg);
    EXPECT_TRUE(r.correct);
}

TEST(Sssp, BlockingModeMatches)
{
    core::Machine m(cfgFor(4, ProcessorMode::Blocking));
    SsspConfig cfg;
    cfg.vertices = 256;
    EXPECT_TRUE(runSssp(m, cfg).correct);
}

struct SsspParam {
    unsigned nodes;
    unsigned replication;
};

class SsspSweep : public ::testing::TestWithParam<SsspParam>
{
};

TEST_P(SsspSweep, MatchesDijkstra)
{
    const SsspParam p = GetParam();
    core::Machine m(cfgFor(p.nodes));
    SsspConfig cfg;
    cfg.vertices = 512;
    cfg.replication = p.replication;
    cfg.seed = 3;
    const SsspResult r = runSssp(m, cfg);
    EXPECT_TRUE(r.correct);
}

INSTANTIATE_TEST_SUITE_P(
    NodesAndReplication, SsspSweep,
    ::testing::Values(SsspParam{1, 1}, SsspParam{2, 1}, SsspParam{2, 2},
                      SsspParam{4, 1}, SsspParam{4, 2}, SsspParam{4, 4},
                      SsspParam{8, 1}, SsspParam{8, 3}, SsspParam{16, 1},
                      SsspParam{16, 5}),
    [](const ::testing::TestParamInfo<SsspParam>& info) {
        return "n" + std::to_string(info.param.nodes) + "_r" +
               std::to_string(info.param.replication);
    });

TEST(Sssp, ReplicationRaisesLocalReadRatio)
{
    // The Table 2-1 trend: more copies => relatively more local reads.
    SsspConfig cfg;
    cfg.vertices = 512;
    cfg.seed = 11;

    core::Machine m1(cfgFor(8));
    cfg.replication = 1;
    const SsspResult r1 = runSssp(m1, cfg);

    core::Machine m4(cfgFor(8));
    cfg.replication = 4;
    const SsspResult r4 = runSssp(m4, cfg);

    ASSERT_TRUE(r1.correct);
    ASSERT_TRUE(r4.correct);
    const double ratio1 = safeRatio(
        static_cast<double>(r1.report.localReads),
        static_cast<double>(r1.report.remoteReads));
    const double ratio4 = safeRatio(
        static_cast<double>(r4.report.localReads),
        static_cast<double>(r4.report.remoteReads));
    EXPECT_GT(ratio4, ratio1);
    // And more update messages flow.
    EXPECT_GT(r4.report.updateMessages, r1.report.updateMessages);
}

TEST(Sssp, FullReplicationStaysCorrect)
{
    // Regression: with every page replicated on every node, the popped
    // vertex's distance must be read at the master (delayed-read); a
    // replica read can be stale and silently lose propagation.
    core::Machine m(cfgFor(16));
    SsspConfig cfg;
    cfg.vertices = 512;
    cfg.kind = SsspGraphKind::Grid;
    cfg.replication = 16;
    cfg.seed = 9;
    EXPECT_TRUE(runSssp(m, cfg).correct);
}

} // namespace
} // namespace workloads
} // namespace plus
