/**
 * @file
 * Unit tests for the processor cache timing model: hits/misses,
 * associativity, LRU replacement, write-through behaviour, and node-bus
 * snooping in both update and invalidate policies.
 */

#include <gtest/gtest.h>

#include "node/cache.hpp"

namespace plus {
namespace node {
namespace {

CostModel
smallCache()
{
    CostModel cost;
    cost.cacheBytes = 256; // 16 lines of 4 words
    cost.cacheLineWords = 4;
    cost.cacheWays = 2; // 8 sets
    return cost;
}

TEST(Cache, ColdMissThenHit)
{
    Cache cache(smallCache());
    EXPECT_FALSE(cache.accessRead(0, 0));
    EXPECT_TRUE(cache.accessRead(0, 0));
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(Cache, WholeLineHitsAfterOneFill)
{
    Cache cache(smallCache());
    cache.accessRead(0, 4);
    EXPECT_TRUE(cache.accessRead(0, 5));
    EXPECT_TRUE(cache.accessRead(0, 6));
    EXPECT_TRUE(cache.accessRead(0, 7));
    EXPECT_FALSE(cache.accessRead(0, 8)); // next line
}

TEST(Cache, DifferentFramesDoNotAlias)
{
    Cache cache(smallCache());
    cache.accessRead(0, 0);
    // Frame 1's line 0 maps to a different global line number.
    EXPECT_FALSE(cache.accessRead(1, 0));
}

TEST(Cache, TwoWaysHoldConflictingLines)
{
    Cache cache(smallCache());
    // Lines 0 and 8 map to the same set (8 sets): both fit (2 ways).
    cache.accessRead(0, 0);
    cache.accessRead(0, 32); // line 8 -> set 0
    EXPECT_TRUE(cache.accessRead(0, 0));
    EXPECT_TRUE(cache.accessRead(0, 32));
}

TEST(Cache, LruEvictsOldest)
{
    Cache cache(smallCache());
    cache.accessRead(0, 0);  // line 0 -> set 0
    cache.accessRead(0, 32); // line 8 -> set 0
    cache.accessRead(0, 0);  // touch line 0 (now MRU)
    cache.accessRead(0, 64); // line 16 -> set 0: evicts line 8
    EXPECT_TRUE(cache.accessRead(0, 0));
    EXPECT_FALSE(cache.accessRead(0, 32));
    EXPECT_GE(cache.stats().evictions, 1u);
}

TEST(Cache, WriteThroughDoesNotAllocate)
{
    Cache cache(smallCache());
    EXPECT_FALSE(cache.accessWrite(0, 0));
    EXPECT_FALSE(cache.accessRead(0, 0)); // still a miss
}

TEST(Cache, WriteUpdatesPresentLine)
{
    Cache cache(smallCache());
    cache.accessRead(0, 0);
    EXPECT_TRUE(cache.accessWrite(0, 1));
}

TEST(Cache, SnoopUpdateKeepsLineValid)
{
    Cache cache(smallCache(), SnoopPolicy::Update);
    cache.accessRead(0, 0);
    cache.snoop(0, 2); // coherence manager wrote word 2 of the line
    EXPECT_TRUE(cache.accessRead(0, 0));
    EXPECT_EQ(cache.stats().snoopUpdates, 1u);
}

TEST(Cache, SnoopInvalidateEvictsLine)
{
    Cache cache(smallCache(), SnoopPolicy::Invalidate);
    cache.accessRead(0, 0);
    cache.snoop(0, 2);
    EXPECT_FALSE(cache.accessRead(0, 0));
    EXPECT_EQ(cache.stats().snoopInvalidates, 1u);
}

TEST(Cache, SnoopOfAbsentLineIsIgnored)
{
    Cache cache(smallCache());
    cache.snoop(3, 100);
    EXPECT_EQ(cache.stats().snoopUpdates, 0u);
}

TEST(Cache, FlushDropsEverything)
{
    Cache cache(smallCache());
    cache.accessRead(0, 0);
    cache.accessRead(1, 0);
    cache.flush();
    EXPECT_FALSE(cache.accessRead(0, 0));
    EXPECT_FALSE(cache.accessRead(1, 0));
}

TEST(Cache, PaperGeometry)
{
    // 32 Kbyte, 4-word lines, 2 ways: 2048 lines, 1024 sets.
    CostModel cost;
    Cache cache(cost);
    EXPECT_EQ(cache.ways(), 2u);
    EXPECT_EQ(cache.sets(), 1024u);
}

} // namespace
} // namespace node
} // namespace plus
