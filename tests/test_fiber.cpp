/**
 * @file
 * Unit tests for the cooperative fibers underlying execution-driven
 * simulation.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/fiber.hpp"

namespace plus {
namespace sim {
namespace {

TEST(Fiber, RunsBodyToCompletion)
{
    bool ran = false;
    Fiber fiber([&] { ran = true; }, 64 * 1024);
    EXPECT_FALSE(fiber.finished());
    fiber.resume();
    EXPECT_TRUE(ran);
    EXPECT_TRUE(fiber.finished());
}

TEST(Fiber, YieldReturnsToResumer)
{
    std::vector<int> order;
    Fiber fiber([&] {
        order.push_back(1);
        Fiber::yield();
        order.push_back(3);
    }, 64 * 1024);
    fiber.resume();
    order.push_back(2);
    fiber.resume();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_TRUE(fiber.finished());
}

TEST(Fiber, ManyYields)
{
    int counter = 0;
    Fiber fiber([&] {
        for (int i = 0; i < 100; ++i) {
            ++counter;
            Fiber::yield();
        }
    }, 64 * 1024);
    for (int i = 0; i < 100; ++i) {
        fiber.resume();
        EXPECT_EQ(counter, i + 1);
    }
    EXPECT_FALSE(fiber.finished());
    fiber.resume();
    EXPECT_TRUE(fiber.finished());
}

TEST(Fiber, CurrentTracksRunningFiber)
{
    EXPECT_EQ(Fiber::current(), nullptr);
    Fiber* seen = nullptr;
    Fiber fiber([&] { seen = Fiber::current(); }, 64 * 1024);
    fiber.resume();
    EXPECT_EQ(seen, &fiber);
    EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, InterleavesTwoFibers)
{
    std::vector<std::string> log;
    Fiber a([&] {
        log.push_back("a1");
        Fiber::yield();
        log.push_back("a2");
    }, 64 * 1024);
    Fiber b([&] {
        log.push_back("b1");
        Fiber::yield();
        log.push_back("b2");
    }, 64 * 1024);
    a.resume();
    b.resume();
    a.resume();
    b.resume();
    EXPECT_EQ(log,
              (std::vector<std::string>{"a1", "b1", "a2", "b2"}));
}

TEST(Fiber, DeepStackUsage)
{
    // Recursion must fit comfortably in the configured stack.
    std::function<int(int)> fib = [&](int n) {
        return n < 2 ? n : fib(n - 1) + fib(n - 2);
    };
    int result = 0;
    Fiber fiber([&] { result = fib(18); }, 256 * 1024);
    fiber.resume();
    EXPECT_EQ(result, 2584);
}

TEST(Fiber, LocalStateSurvivesYield)
{
    int out = 0;
    Fiber fiber([&] {
        int local = 11;
        Fiber::yield();
        local += 31;
        Fiber::yield();
        out = local;
    }, 64 * 1024);
    fiber.resume();
    fiber.resume();
    fiber.resume();
    EXPECT_EQ(out, 42);
}

} // namespace
} // namespace sim
} // namespace plus
