// Clean input: the unordered iteration is order-independent and carries
// the explicit, reasoned allow() comment the contract requires.
#include <unordered_map>

namespace corpus {

class Counters {
  public:
    void
    bump(unsigned key)
    {
        counts_[key] += 1;
    }

    unsigned
    total() const
    {
        unsigned sum = 0;
        // pluslint: allow(R1) -- commutative sum; order-independent.
        for (const auto& [key, count] : counts_) {
            (void)key;
            sum += count;
        }
        return sum;
    }

  private:
    std::unordered_map<unsigned, unsigned> counts_;
};

} // namespace corpus
