// Known-bad input for pluslint rule R3 (pointer-order): a std::map keyed
// by pointer value iterates in allocation-address order, which differs
// run to run (ASLR, allocator state).
#include <map>

namespace corpus {

struct Node {
    unsigned id = 0;
};

class Registry {
  public:
    void
    add(Node* node, unsigned weight)
    {
        weights_[node] = weight;
    }

    unsigned
    total() const
    {
        unsigned sum = 0;
        for (const auto& [node, weight] : weights_) {
            sum += node->id * weight;
        }
        return sum;
    }

  private:
    std::map<Node*, unsigned> weights_; // BAD: keyed by address
};

} // namespace corpus
