// Known-bad input for pluslint rule R5 (env-read): a PLUS_* knob read
// outside common/config bypasses the audited plus::envRead() choke point.
#include <cstdlib>

namespace corpus {

bool
fastPathEnabled()
{
    return std::getenv("PLUS_FAST_PATH") != nullptr; // BAD: raw getenv
}

} // namespace corpus
