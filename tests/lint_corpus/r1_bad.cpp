// Known-bad input for pluslint rule R1 (unordered-iteration): the hash
// order of an unordered_map leaks into observable output.
#include <cstdio>
#include <unordered_map>

namespace corpus {

class TrafficTable {
  public:
    void
    record(unsigned link, unsigned bytes)
    {
        perLink_[link] += bytes;
    }

    void
    dump() const
    {
        for (const auto& [link, bytes] : perLink_) { // BAD: hash order
            std::printf("link %u: %u bytes\n", link, bytes);
        }
    }

  private:
    std::unordered_map<unsigned, unsigned> perLink_;
};

} // namespace corpus
