#!/usr/bin/env python3
"""Self-test for scripts/pluslint.py against the known-bad corpus.

Each r<N>_bad.cpp must produce at least one finding, every finding it
produces must be for exactly rule R<N> with a file:line diagnostic, and
the linter must exit 1. The *_ok.cpp files must produce no findings and
exit 0. Registered as the `lint_corpus` ctest so a regression in the
analyzer fails tier-1, not just the lint CI stage.
"""

import argparse
import os
import re
import subprocess
import sys

FINDING_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): \[(?P<rule>R\d)\] ")

EXPECTATIONS = [
    ("r1_bad.cpp", "R1"),
    ("r2_bad.cpp", "R2"),
    ("r3_bad.cpp", "R3"),
    ("r4_bad.cpp", "R4"),
    ("r5_bad.cpp", "R5"),
    ("allow_ok.cpp", None),
    ("clean_ok.cpp", None),
]


def run_lint(pluslint, target):
    proc = subprocess.run(
        [sys.executable, pluslint, target, "--no-baseline"],
        capture_output=True, text=True, timeout=60, check=False)
    findings = []
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            findings.append((m.group("path"), int(m.group("line")),
                             m.group("rule")))
        elif line.strip():
            raise AssertionError(
                f"unparseable finding line for {target}: {line!r}")
    return proc.returncode, findings


def main():
    ap = argparse.ArgumentParser()
    here = os.path.dirname(os.path.realpath(__file__))
    ap.add_argument("--pluslint", default=os.path.join(
        here, os.pardir, os.pardir, "scripts", "pluslint.py"))
    ap.add_argument("--corpus", default=here)
    args = ap.parse_args()

    failures = []
    for name, expected_rule in EXPECTATIONS:
        target = os.path.join(args.corpus, name)
        if not os.path.isfile(target):
            failures.append(f"{name}: corpus file missing")
            continue
        code, findings = run_lint(args.pluslint, target)
        rules = {rule for _path, _line, rule in findings}
        if expected_rule is None:
            if code != 0 or findings:
                failures.append(
                    f"{name}: expected clean, got exit {code} with "
                    f"findings {findings}")
            else:
                print(f"ok: {name} is clean")
            continue
        if code != 1:
            failures.append(
                f"{name}: expected exit 1 (findings), got {code}")
        if not findings:
            failures.append(f"{name}: rule {expected_rule} did not fire")
        elif rules != {expected_rule}:
            failures.append(
                f"{name}: expected only {expected_rule}, got rules "
                f"{sorted(rules)} in {findings}")
        else:
            marked = sum(1 for _p, line, _r in findings
                         if "BAD" in open(target, encoding="utf-8")
                         .read().splitlines()[line - 1])
            print(f"ok: {name} -> {expected_rule} x{len(findings)} "
                  f"({marked} on BAD-marked lines)")
            if marked == 0:
                failures.append(
                    f"{name}: no finding landed on a BAD-marked line — "
                    f"the diagnostic points at the wrong place: "
                    f"{findings}")

    if failures:
        print("\nlint corpus FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("lint corpus OK: every rule fires on its known-bad example, "
          "clean and allow() inputs stay silent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
