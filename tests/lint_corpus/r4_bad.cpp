// Known-bad input for pluslint rule R4 (mutable-static): namespace-scope
// and function-local mutable state survives across runs/machines inside
// one process and breaks replay.
namespace corpus {

unsigned gEventsSeen = 0; // BAD: mutable namespace-scope state

unsigned
nextTicket()
{
    static unsigned ticket = 0; // BAD: mutable function-local static
    gEventsSeen += 1;
    return ++ticket;
}

} // namespace corpus
