// Clean input: ordered containers, simulated time, stable-id keys, no
// global state, no environment reads — nothing for pluslint to flag.
#include <cstdint>
#include <map>
#include <vector>

namespace corpus {

class Ledger {
  public:
    void
    record(std::uint32_t node, std::uint64_t cycles)
    {
        perNode_[node] += cycles;
        history_.push_back(cycles);
    }

    std::uint64_t
    busiest() const
    {
        std::uint64_t best = 0;
        for (const auto& [node, cycles] : perNode_) {
            (void)node;
            best = best > cycles ? best : cycles;
        }
        return best;
    }

  private:
    std::map<std::uint32_t, std::uint64_t> perNode_;
    std::vector<std::uint64_t> history_;
};

} // namespace corpus
