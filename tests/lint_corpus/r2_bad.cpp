// Known-bad input for pluslint rule R2 (wall-clock): host time reaches a
// value the simulation could observe, and the file is not annotated
// PLUS_HOST_ONLY.
#include <chrono>
#include <cstdint>

namespace corpus {

std::uint64_t
stampEvent()
{
    const auto now = std::chrono::steady_clock::now(); // BAD: host clock
    return static_cast<std::uint64_t>(now.time_since_epoch().count());
}

} // namespace corpus
