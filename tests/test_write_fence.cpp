/**
 * @file
 * Tests of the paper's write fence (Section 2.3): it "causes the
 * coherence manager to block any subsequent write by the processor,
 * until all its earlier ones have completed" — while the processor
 * itself continues. Reads and computation pass the fence; writes,
 * interlocked issues, and a later blocking fence do not.
 */

#include <gtest/gtest.h>

#include "core/context.hpp"
#include "core/machine.hpp"

namespace plus {
namespace core {
namespace {

MachineConfig
cfgFor(unsigned nodes)
{
    MachineConfig cfg;
    cfg.nodes = nodes;
    cfg.framesPerNode = 64;
    return cfg;
}

TEST(WriteFence, DoesNotStallTheProcessor)
{
    Machine m(cfgFor(4));
    const Addr page = m.alloc(kPageBytes, 3);
    Cycles fence_cost = 0;
    m.spawn(0, [&](Context& ctx) {
        ctx.read(page); // warm translation
        ctx.write(page, 1);
        const Cycles t0 = ctx.machine().now();
        ctx.writeFence();
        fence_cost = ctx.machine().now() - t0;
    });
    m.run();
    // Issue cost only — no waiting for the chain.
    EXPECT_LE(fence_cost, 2u);
}

TEST(WriteFence, ReadsAndComputePassTheFence)
{
    Machine m(cfgFor(4));
    const Addr remote = m.alloc(kPageBytes, 3);
    const Addr local = m.alloc(kPageBytes, 0);
    m.poke(local, 5);
    Cycles overlap_cost = 0;
    m.spawn(0, [&](Context& ctx) {
        ctx.read(remote);
        ctx.read(local);
        ctx.write(remote, 1);
        ctx.writeFence();
        const Cycles t0 = ctx.machine().now();
        ctx.compute(10);
        EXPECT_EQ(ctx.read(local), 5u); // read passes the fence
        overlap_cost = ctx.machine().now() - t0;
    });
    m.run();
    EXPECT_LE(overlap_cost, 12u);
}

TEST(WriteFence, SubsequentWriteWaitsForTheDrain)
{
    Machine m(cfgFor(4));
    const Addr remote = m.alloc(kPageBytes, 3);
    const Addr other = m.alloc(kPageBytes, 0);
    m.spawn(0, [&](Context& ctx) {
        ctx.read(remote);
        ctx.read(other);
        ctx.write(remote, 1); // slow: full round trip to node 3
        ctx.writeFence();
        ctx.write(other, 2); // must be ordered behind the drain
        // Our own read of `other` blocks on the gated pending write, so
        // observing 2 here proves the write eventually lands; the
        // ordering is checked below via completion times.
        EXPECT_EQ(ctx.read(other), 2u);
    });
    m.run();
    EXPECT_EQ(m.peek(remote), 1u);
    EXPECT_EQ(m.peek(other), 2u);
}

TEST(WriteFence, OrdersTheFlagBehindTheData)
{
    // The producer/consumer idiom with the *non-blocking* fence: the
    // consumer must never observe the flag before the data, though the
    // producer never stalls.
    Machine m(cfgFor(4));
    const Addr data = m.alloc(kPageBytes, 1);
    const Addr flag = m.alloc(kPageBytes, 2);
    bool violated = false;
    m.spawn(0, [&](Context& ctx) {
        for (Word round = 1; round <= 20; ++round) {
            for (Word w = 0; w < 6; ++w) {
                ctx.write(data + 4 * w, round * 100 + w);
            }
            ctx.writeFence();
            ctx.write(flag, round);
            ctx.compute(25);
        }
    });
    m.spawn(3, [&](Context& ctx) {
        for (Word round = 1; round <= 20; ++round) {
            while (ctx.read(flag) < round) {
                ctx.pause(8);
            }
            for (Word w = 0; w < 6; ++w) {
                if (ctx.read(data + 4 * w) < round * 100) {
                    violated = true;
                }
            }
        }
    });
    m.run();
    EXPECT_FALSE(violated);
}

TEST(WriteFence, InterlockedIssueIsGatedToo)
{
    // "The processor can then proceed with the synchronization
    // operation" — i.e. the sync op starts only after the drain.
    Machine m(cfgFor(4));
    const Addr data = m.alloc(kPageBytes, 3);
    const Addr sync = m.alloc(kPageBytes, 3);
    m.spawn(0, [&](Context& ctx) {
        ctx.read(data);
        ctx.read(sync);
        ctx.write(data, 9);
        ctx.writeFence();
        // The fadd executes at the same master; if it were not gated it
        // could reach the master before the write's chain completes.
        const Word old = ctx.fadd(sync, 1);
        EXPECT_EQ(old, 0u);
        // By the time the fadd's result is back, the gated write drain
        // had completed, so the data write must be globally visible.
        EXPECT_EQ(ctx.machine().peek(data), 9u);
    });
    m.run();
}

TEST(WriteFence, StackedFencesPreserveGroupOrder)
{
    Machine m(cfgFor(4));
    const Addr a = m.alloc(kPageBytes, 1);
    const Addr b = m.alloc(kPageBytes, 2);
    const Addr c = m.alloc(kPageBytes, 3);
    m.spawn(0, [&](Context& ctx) {
        ctx.read(a);
        ctx.read(b);
        ctx.read(c);
        ctx.write(a, 1);
        ctx.writeFence();
        ctx.write(b, 2);
        ctx.writeFence();
        ctx.write(c, 3);
        ctx.fence(); // full drain: everything must have landed in order
        EXPECT_EQ(ctx.machine().peek(a), 1u);
        EXPECT_EQ(ctx.machine().peek(b), 2u);
        EXPECT_EQ(ctx.machine().peek(c), 3u);
    });
    m.run();
}

TEST(WriteFence, BlockingFenceHonoursGatedWrites)
{
    Machine m(cfgFor(4));
    const Addr a = m.alloc(kPageBytes, 3);
    const Addr b = m.alloc(kPageBytes, 2);
    m.spawn(0, [&](Context& ctx) {
        ctx.read(a);
        ctx.read(b);
        ctx.write(a, 1);
        ctx.writeFence();
        ctx.write(b, 2); // gated
        ctx.fence();     // must wait for the *gated* write as well
        EXPECT_EQ(ctx.machine().peek(b), 2u);
    });
    m.run();
}

TEST(WriteFence, NoOpWhenNothingPending)
{
    Machine m(cfgFor(2));
    const Addr a = m.alloc(kPageBytes, 0);
    m.spawn(0, [&](Context& ctx) {
        ctx.writeFence(); // nothing in flight
        ctx.write(a, 1);
        EXPECT_EQ(ctx.read(a), 1u);
    });
    m.run();
    EXPECT_EQ(m.peek(a), 1u);
}

} // namespace
} // namespace core
} // namespace plus
