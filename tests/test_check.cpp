/**
 * @file
 * Tests for the plus::check subsystem: the protocol-invariant checker
 * (clean runs stay clean, seeded protocol violations panic with a trace)
 * and the happens-before race detector (racy workloads are flagged,
 * fence+lock-disciplined workloads are not).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "check/checker.hpp"
#include "common/config.hpp"
#include "common/panic.hpp"
#include "core/context.hpp"
#include "core/machine.hpp"
#include "net/network.hpp"
#include "proto/messages.hpp"

namespace plus {
namespace {

using core::Context;
using core::Machine;

MachineConfig
smallConfig(unsigned nodes)
{
    MachineConfig cfg;
    cfg.nodes = nodes;
    cfg.framesPerNode = 64;
    return cfg;
}

// --------------------------------------------------------------------------
// Invariant checker: clean runs
// --------------------------------------------------------------------------

TEST(CheckClean, ReplicatedWritesRunCleanWithCheckerOn)
{
    Machine m(smallConfig(4));
    ASSERT_NE(m.checker(), nullptr);
    ASSERT_NE(m.checker()->invariants(), nullptr);

    const Addr base = m.alloc(kPageBytes, 0);
    m.replicate(base, 1);
    m.replicate(base, 2);
    m.settle();

    for (NodeId n = 0; n < 4; ++n) {
        m.spawn(n, [base, n](Context& ctx) {
            ctx.write(base + 4 * n, 100 + n);
            ctx.fence();
            ctx.fadd(base + 4 * 32, 1);
            ctx.write(base + 4 * (8 + n), 200 + n);
            ctx.fence();
        });
    }
    m.run();
    m.settle();

    for (NodeId n = 0; n < 4; ++n) {
        EXPECT_EQ(m.peek(base + 4 * n), 100 + n);
        EXPECT_EQ(m.peek(base + 4 * (8 + n)), 200 + n);
    }
    EXPECT_EQ(m.peek(base + 4 * 32), 4u);

    const check::InvariantChecker& inv = *m.checker()->invariants();
    EXPECT_GT(inv.writesRetired(), 0u);
    EXPECT_GT(inv.chainsCompleted(), 0u);
    EXPECT_EQ(inv.writesInFlight(), 0u);
    EXPECT_GT(m.checker()->trace().recorded(), 0u);
}

TEST(CheckClean, OnlineDeletionStaysClean)
{
    Machine m(smallConfig(4));
    const Addr base = m.alloc(kPageBytes, 0);
    m.replicate(base, 1);
    m.replicate(base, 2);
    m.settle();

    m.spawn(3, [base](Context& ctx) {
        for (unsigned i = 0; i < 16; ++i) {
            ctx.write(base + 4 * i, i);
        }
        ctx.fence();
    });
    m.deleteCopy(base, 2);
    m.run();
    m.settle();

    EXPECT_EQ(m.checker()->invariants()->writesInFlight(), 0u);
}

TEST(CheckClean, CheckerCanBeDisabled)
{
    MachineConfig cfg = smallConfig(2);
    cfg.check.invariants = false;
    cfg.check.races = false;
    Machine m(cfg);
    EXPECT_EQ(m.checker(), nullptr);

    const Addr base = m.alloc(kPageBytes, 0);
    m.spawn(1, [base](Context& ctx) {
        ctx.write(base, 7);
        ctx.fence();
    });
    m.run();
    EXPECT_EQ(m.peek(base), 7u);
}

// --------------------------------------------------------------------------
// Invariant checker: seeded protocol violations
// --------------------------------------------------------------------------

TEST(CheckSeeded, UpdateBypassingMasterIsDetected)
{
    Machine m(smallConfig(2));
    const Addr base = m.alloc(kPageBytes, 0);
    m.replicate(base, 1);
    m.settle();

    // Inject an UpdateReq straight at the replica: its chain never took
    // effect at the master copy, breaking the master-first ordering rule.
    const mem::CopyList& cl = m.copyListOf(base);
    ASSERT_EQ(cl.size(), 2u);
    const PhysPage replica = cl.copies()[1];
    ASSERT_EQ(replica.node, 1u);

    auto msg = std::make_unique<proto::UpdateReq>();
    msg->target = replica;
    msg->vpn = pageOf(base);
    msg->writes.push_back(proto::WordWrite{3, 42});
    msg->originator = 0;
    msg->tag = 7;
    msg->chainId = 12345; // never assigned by any master
    msg->needAck = false;
    const unsigned bytes = msg->bytes();

    net::Packet packet;
    packet.src = 0;
    packet.dst = 1;
    packet.payloadBytes = bytes;
    packet.payload = std::move(msg);
    m.nodeAt(1).cm().onPacket(std::move(packet));

    EXPECT_THROW(m.settle(), PanicError);
}

TEST(CheckSeeded, CopyListSkipIsDetected)
{
    Machine m(smallConfig(4));
    const Addr base = m.alloc(kPageBytes, 0);
    m.replicate(base, 1);
    m.replicate(base, 2);
    m.settle();

    const mem::CopyList& cl = m.copyListOf(base);
    ASSERT_EQ(cl.size(), 3u);
    const PhysPage master = cl.copies()[0];
    const PhysPage skipped_to = cl.copies()[2];
    ASSERT_EQ(master.node, 0u);

    // Corrupt the master's next-copy pointer so its update chains bypass
    // the second copy in the list: the checker must flag the first write.
    m.nodeAt(master.node).tables().setNextCopy(master.frame, skipped_to);

    m.spawn(0, [base](Context& ctx) {
        ctx.write(base + 4 * 5, 99);
        ctx.fence();
    });
    EXPECT_THROW(m.run(), PanicError);
}

// --------------------------------------------------------------------------
// Invariant checker: unit-level event sequences
// --------------------------------------------------------------------------

check::Options
invariantsOnly()
{
    check::Options opts;
    opts.invariants = true;
    opts.races = false;
    return opts;
}

TEST(CheckUnit, RetireOfUnknownTagPanics)
{
    check::Checker c(invariantsOnly(), nullptr);
    EXPECT_THROW(c.onPendingComplete(0, 99), PanicError);
}

TEST(CheckUnit, RetireBeforeMasterApplicationPanics)
{
    check::Checker c(invariantsOnly(), nullptr);
    c.onPendingInsert(0, 1, /*vpn=*/5, /*word_offset=*/3);
    c.onWriteIssued(0, 1, 5, 3, /*from_rmw=*/false);
    // The write never reached the master copy, yet an ack arrives.
    EXPECT_THROW(c.onPendingComplete(0, 1), PanicError);
}

TEST(CheckUnit, WriteIssuedWithoutPendingEntryPanics)
{
    check::Checker c(invariantsOnly(), nullptr);
    EXPECT_THROW(c.onWriteIssued(0, 9, 1, 0, false), PanicError);
}

TEST(CheckUnit, ReplicaApplicationWithUnknownChainPanics)
{
    check::Checker c(invariantsOnly(), nullptr);
    EXPECT_THROW(c.onChainApplied(/*chain=*/77, PhysPage{1, 4}, /*vpn=*/5,
                                  /*word_offset=*/0, /*words=*/1,
                                  /*originator=*/0, /*tag=*/1,
                                  /*tracked=*/true, /*at_master=*/false),
                 PanicError);
}

TEST(CheckUnit, ReadOfOwnInFlightWritePanics)
{
    check::Checker c(invariantsOnly(), nullptr);
    c.onPendingInsert(2, 1, /*vpn=*/5, /*word_offset=*/3);
    c.onReadServed(2, 5, 4); // different word: fine
    c.onReadServed(1, 5, 3); // different node: fine
    EXPECT_THROW(c.onReadServed(2, 5, 3), PanicError);
}

TEST(CheckUnit, FenceWithInFlightWritesPanics)
{
    check::Checker c(invariantsOnly(), nullptr);
    c.onPendingInsert(0, 1, 5, 3);
    EXPECT_THROW(c.onFenceComplete(0, /*pending_empty=*/true), PanicError);
}

TEST(CheckUnit, FenceWithNonEmptyCachePanics)
{
    check::Checker c(invariantsOnly(), nullptr);
    EXPECT_THROW(c.onFenceComplete(0, /*pending_empty=*/false), PanicError);
}

// --------------------------------------------------------------------------
// Event trace
// --------------------------------------------------------------------------

TEST(CheckTrace, KeepsBoundedHistoryAndRendersIt)
{
    check::EventTrace trace(4, nullptr);
    for (unsigned i = 0; i < 6; ++i) {
        check::Event e;
        e.kind = check::EventKind::ProcWrite;
        e.node = i;
        trace.record(e);
    }
    EXPECT_EQ(trace.recorded(), 6u);
    const std::string text = trace.render();
    EXPECT_NE(text.find("last 4 of 6"), std::string::npos);
    EXPECT_NE(text.find("proc-write"), std::string::npos);
    EXPECT_NE(text.find("n5"), std::string::npos);  // newest retained
    EXPECT_EQ(text.find("n1 "), std::string::npos); // oldest evicted

    try {
        trace.violation("boom");
        FAIL() << "violation() must panic";
    } catch (const PanicError& err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("boom"), std::string::npos);
        EXPECT_NE(what.find("proc-write"), std::string::npos);
    }
}

// --------------------------------------------------------------------------
// Race detector
// --------------------------------------------------------------------------

MachineConfig
raceConfig(unsigned nodes)
{
    MachineConfig cfg = smallConfig(nodes);
    cfg.check.races = true;
    return cfg;
}

TEST(CheckRaces, UnsynchronizedSharingIsFlagged)
{
    Machine m(raceConfig(2));
    const Addr data = m.alloc(kPageBytes, 0);

    m.spawn(0, [data](Context& ctx) {
        ctx.write(data, 1);
        ctx.fence();
    });
    m.spawn(1, [data](Context& ctx) {
        ctx.compute(2000); // runs well after the writer — still no HB edge
        (void)ctx.read(data);
    });
    m.run();

    ASSERT_NE(m.checker()->raceDetector(), nullptr);
    const auto& races = m.checker()->raceDetector()->races();
    ASSERT_EQ(races.size(), 1u);
    EXPECT_EQ(races[0].addr, data);
}

/** Spin-lock critical section; @p fenced controls the pre-unlock fence. */
void
lockedIncrement(Context& ctx, Addr lock, Addr data, bool fenced)
{
    while (ctx.xchng(lock, 1) != 0) {
        ctx.compute(50);
    }
    const Word v = ctx.read(data);
    ctx.write(data, v + 1);
    if (fenced) {
        ctx.fence(); // publish the data write before releasing the lock
    }
    ctx.write(lock, 0); // plain-write unlock (Figure 3-2 idiom)
}

TEST(CheckRaces, LockAndFenceDisciplineIsClean)
{
    Machine m(raceConfig(2));
    const Addr page = m.alloc(kPageBytes, 0);
    const Addr lock = page;
    const Addr data = page + 4;

    for (NodeId n = 0; n < 2; ++n) {
        m.spawn(n, [lock, data](Context& ctx) {
            lockedIncrement(ctx, lock, data, /*fenced=*/true);
        });
    }
    m.run();

    EXPECT_EQ(m.peek(data), 2u);
    EXPECT_TRUE(m.checker()->raceDetector()->races().empty());
    // The lock word was classified as a synchronization variable.
    EXPECT_EQ(m.checker()->raceDetector()->syncWords(), 1u);
}

TEST(CheckRaces, MissingFenceBeforeUnlockIsFlagged)
{
    Machine m(raceConfig(2));
    const Addr page = m.alloc(kPageBytes, 0);
    const Addr lock = page;
    const Addr data = page + 4;

    // Same critical sections, but the unlock is not preceded by a fence:
    // the data write can still be in flight when the next lock holder
    // reads — exactly the weak-ordering bug class of Section 3.1.
    for (NodeId n = 0; n < 2; ++n) {
        m.spawn(n, [lock, data](Context& ctx) {
            lockedIncrement(ctx, lock, data, /*fenced=*/false);
        });
    }
    m.run();

    const auto& races = m.checker()->raceDetector()->races();
    ASSERT_EQ(races.size(), 1u);
    EXPECT_EQ(races[0].addr, data);
}

TEST(CheckRaces, PanicOnRaceRaisesWithTrace)
{
    MachineConfig cfg = raceConfig(2);
    cfg.check.panicOnRace = true;
    Machine m(cfg);
    const Addr data = m.alloc(kPageBytes, 0);

    m.spawn(0, [data](Context& ctx) {
        ctx.write(data, 1);
        ctx.fence();
    });
    m.spawn(1, [data](Context& ctx) {
        ctx.compute(2000);
        (void)ctx.read(data);
    });
    EXPECT_THROW(m.run(), PanicError);
}

} // namespace
} // namespace plus
