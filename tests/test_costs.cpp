/**
 * @file
 * Regression tests pinning the end-to-end cost arithmetic to the
 * paper's published numbers (Section 3.1): these are the quantities
 * bench/table_3_1 prints, asserted here so any timing regression fails
 * CI rather than silently skewing every experiment.
 */

#include <gtest/gtest.h>

#include "core/context.hpp"
#include "core/machine.hpp"
#include "proto/rmw.hpp"

namespace plus {
namespace core {
namespace {

/** 16 nodes on a 4x4 mesh: node h is h hops from node 0 along X. */
MachineConfig
meshConfig()
{
    MachineConfig cfg;
    cfg.nodes = 16;
    cfg.framesPerNode = 64;
    return cfg;
}

Cycles
measureBlockingOp(proto::RmwOp op, unsigned hops)
{
    Machine m(meshConfig());
    const Addr page = m.alloc(kPageBytes, hops);
    Cycles measured = 0;
    m.spawn(0, [&](Context& ctx) {
        ctx.read(page); // warm translation
        const Cycles before = ctx.machine().now();
        ctx.rmw(op, page, 1);
        measured = ctx.machine().now() - before;
    });
    m.run();
    return measured;
}

struct OpCost {
    proto::RmwOp op;
    Cycles occupancy;
};

class PaperCosts : public ::testing::TestWithParam<OpCost>
{
};

TEST_P(PaperCosts, BlockingLatencyIsIssuePlusRoundTripPlusRead)
{
    const OpCost p = GetParam();
    for (unsigned hops = 1; hops <= 3; ++hops) {
        const Cycles one_way = 10 + 2 * hops;
        const Cycles expected = 25 + one_way + p.occupancy + one_way + 10;
        EXPECT_EQ(measureBlockingOp(p.op, hops), expected)
            << toString(p.op) << " at " << hops << " hops";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Table31, PaperCosts,
    ::testing::Values(OpCost{proto::RmwOp::Xchng, 39},
                      OpCost{proto::RmwOp::CondXchng, 39},
                      OpCost{proto::RmwOp::FetchAdd, 39},
                      OpCost{proto::RmwOp::FetchSet, 39},
                      OpCost{proto::RmwOp::MinXchng, 52},
                      OpCost{proto::RmwOp::DelayedRead, 39}),
    [](const ::testing::TestParamInfo<OpCost>& info) {
        std::string name = toString(info.param.op);
        for (char& c : name) {
            if (c == '-') {
                c = '_';
            }
        }
        return name;
    });

TEST(PaperCosts, AdjacentRoundTripIsTwentyFourCycles)
{
    // "The round trip communication time between two adjacent nodes is
    // about 24 cycles."
    Machine m(meshConfig());
    EXPECT_EQ(2 * m.network().zeroLoadLatency(1), 24u);
    // "...each extra hop adds 4 cycles."
    EXPECT_EQ(2 * m.network().zeroLoadLatency(2), 28u);
    EXPECT_EQ(2 * m.network().zeroLoadLatency(3), 32u);
}

TEST(PaperCosts, RemoteBlockingReadIsThirtyTwoPlusRoundTrip)
{
    for (unsigned hops = 1; hops <= 3; ++hops) {
        Machine m(meshConfig());
        const Addr page = m.alloc(kPageBytes, hops);
        Cycles measured = 0;
        m.spawn(0, [&](Context& ctx) {
            ctx.read(page);
            const Cycles before = ctx.machine().now();
            ctx.read(page);
            measured = ctx.machine().now() - before;
        });
        m.run();
        EXPECT_EQ(measured, 32 + 2 * (10 + 2 * hops)) << hops << " hops";
    }
}

TEST(PaperCosts, QueueOpsCostFiftyTwoAtTheManager)
{
    // queue/dequeue address their offset words; check both end to end.
    Machine m(meshConfig());
    const Addr page = m.alloc(kPageBytes, 1);
    m.poke(page, 2);     // QP
    m.poke(page + 4, 2); // DQP
    Cycles q = 0;
    Cycles dq = 0;
    m.spawn(0, [&](Context& ctx) {
        ctx.read(page);
        Cycles t = ctx.machine().now();
        ctx.enqueue(page, 7);
        q = ctx.machine().now() - t;
        t = ctx.machine().now();
        ctx.dequeue(page + 4);
        dq = ctx.machine().now() - t;
    });
    m.run();
    const Cycles expected = 25 + 12 + 52 + 12 + 10;
    EXPECT_EQ(q, expected);
    EXPECT_EQ(dq, expected);
}

TEST(PaperCosts, DelayedIssueCostsTwentyFiveCycles)
{
    Machine m(meshConfig());
    const Addr page = m.alloc(kPageBytes, 3);
    Cycles issue_cost = 0;
    m.spawn(0, [&](Context& ctx) {
        ctx.read(page);
        const Cycles before = ctx.machine().now();
        OpHandle h = ctx.issueFadd(page, 1);
        issue_cost = ctx.machine().now() - before;
        ctx.verify(h);
    });
    m.run();
    EXPECT_EQ(issue_cost, 25u);
}

TEST(PaperCosts, ReadingAnAvailableResultCostsTenCycles)
{
    Machine m(meshConfig());
    const Addr page = m.alloc(kPageBytes, 1);
    Cycles verify_cost = 0;
    m.spawn(0, [&](Context& ctx) {
        ctx.read(page);
        OpHandle h = ctx.issueFadd(page, 1);
        ctx.compute(1000); // result long since arrived
        const Cycles before = ctx.machine().now();
        ctx.verify(h);
        verify_cost = ctx.machine().now() - before;
    });
    m.run();
    EXPECT_EQ(verify_cost, 10u);
}

} // namespace
} // namespace core
} // namespace plus
