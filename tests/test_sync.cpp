/**
 * @file
 * Tests for the synchronization library: mutual exclusion and progress
 * for the spin lock and the Table 3-2 queued lock, barrier episodes,
 * and semaphore producer/consumer behaviour — across machine sizes and
 * processor modes (TEST_P sweeps).
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/context.hpp"
#include "core/machine.hpp"
#include "core/sync.hpp"

namespace plus {
namespace core {
namespace {

MachineConfig
cfgFor(unsigned nodes, ProcessorMode mode = ProcessorMode::Delayed)
{
    MachineConfig cfg;
    cfg.nodes = nodes;
    cfg.framesPerNode = 256;
    cfg.mode = mode;
    return cfg;
}

std::vector<NodeId>
allNodes(unsigned n)
{
    std::vector<NodeId> v(n);
    for (NodeId i = 0; i < n; ++i) {
        v[i] = i;
    }
    return v;
}

/**
 * Increment a shared counter under a lock with a read-modify-write
 * critical section; any mutual-exclusion violation loses updates.
 */
template <typename Acquire, typename Release>
void
hammerLock(Machine& m, Addr counter, unsigned nodes, unsigned rounds,
           Acquire acquire, Release release)
{
    for (NodeId n = 0; n < nodes; ++n) {
        m.spawn(n, [=](Context& ctx) mutable {
            for (unsigned i = 0; i < rounds; ++i) {
                acquire(ctx, n);
                const Word v = ctx.read(counter);
                ctx.compute(17); // widen the race window
                ctx.write(counter, v + 1);
                release(ctx, n);
            }
        });
    }
    m.run();
}

TEST(SpinLock, MutualExclusionUnderContention)
{
    Machine m(cfgFor(8));
    const Addr counter = m.alloc(kPageBytes, 0);
    SpinLock lock = SpinLock::create(m, 3);
    hammerLock(
        m, counter, 8, 10,
        [lock](Context& ctx, unsigned) mutable { lock.acquire(ctx); },
        [lock](Context& ctx, unsigned) mutable { lock.release(ctx); });
    EXPECT_EQ(m.peek(counter), 80u);
}

TEST(SpinLock, TryAcquireReportsHeld)
{
    Machine m(cfgFor(2));
    SpinLock lock = SpinLock::create(m, 0);
    bool first = false;
    bool second = true;
    m.spawn(0, [&](Context& ctx) {
        first = lock.tryAcquire(ctx);
        second = lock.tryAcquire(ctx);
        lock.release(ctx);
    });
    m.run();
    EXPECT_TRUE(first);
    EXPECT_FALSE(second);
}

struct LockParam {
    unsigned nodes;
    ProcessorMode mode;
};

class QueuedLockSweep : public ::testing::TestWithParam<LockParam>
{
};

TEST_P(QueuedLockSweep, MutualExclusionAndProgress)
{
    const LockParam p = GetParam();
    Machine m(cfgFor(p.nodes, p.mode));
    const Addr counter = m.alloc(kPageBytes, 0);
    QueuedLock lock = QueuedLock::create(m, 0, allNodes(p.nodes));
    QueuedLock* lp = &lock;
    hammerLock(
        m, counter, p.nodes, 10,
        [lp](Context& ctx, unsigned me) { lp->acquire(ctx, me); },
        [lp](Context& ctx, unsigned) { lp->release(ctx); });
    EXPECT_EQ(m.peek(counter), 10u * p.nodes);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, QueuedLockSweep,
    ::testing::Values(LockParam{2, ProcessorMode::Delayed},
                      LockParam{4, ProcessorMode::Delayed},
                      LockParam{8, ProcessorMode::Delayed},
                      LockParam{16, ProcessorMode::Delayed},
                      LockParam{4, ProcessorMode::Blocking},
                      LockParam{7, ProcessorMode::Delayed}),
    [](const ::testing::TestParamInfo<LockParam>& info) {
        return "n" + std::to_string(info.param.nodes) +
               (info.param.mode == ProcessorMode::Blocking ? "_blocking"
                                                           : "_delayed");
    });

TEST(Barrier, SeparatesPhases)
{
    constexpr unsigned kNodes = 8;
    Machine m(cfgFor(kNodes));
    const Addr phase1 = m.alloc(kPageBytes, 0);
    Barrier barrier = Barrier::create(m, 0, kNodes, true);
    m.settle();
    bool violated = false;
    for (NodeId n = 0; n < kNodes; ++n) {
        m.spawn(n, [&, n](Context& ctx) {
            BarrierWaiter waiter(barrier);
            ctx.fadd(phase1, 1);
            waiter.wait(ctx);
            // After the barrier every phase-1 increment must be visible.
            if (ctx.read(phase1) != kNodes) {
                violated = true;
            }
        });
    }
    m.run();
    EXPECT_FALSE(violated);
}

TEST(Barrier, ManyEpisodes)
{
    constexpr unsigned kNodes = 4;
    constexpr unsigned kEpisodes = 20;
    Machine m(cfgFor(kNodes));
    const Addr counter = m.alloc(kPageBytes, 0);
    Barrier barrier = Barrier::create(m, 0, kNodes, true);
    m.settle();
    bool violated = false;
    for (NodeId n = 0; n < kNodes; ++n) {
        m.spawn(n, [&](Context& ctx) {
            BarrierWaiter waiter(barrier);
            for (unsigned e = 0; e < kEpisodes; ++e) {
                ctx.fadd(counter, 1);
                waiter.wait(ctx);
                // Between barriers the counter is an exact multiple.
                if (ctx.read(counter) < (e + 1) * kNodes) {
                    violated = true;
                }
                waiter.wait(ctx);
            }
        });
    }
    m.run();
    EXPECT_FALSE(violated);
    EXPECT_EQ(m.peek(counter), kNodes * kEpisodes);
}

TEST(Barrier, UnreplicatedSenseStillWorks)
{
    constexpr unsigned kNodes = 4;
    Machine m(cfgFor(kNodes));
    Barrier barrier = Barrier::create(m, 0, kNodes, false);
    for (NodeId n = 0; n < kNodes; ++n) {
        m.spawn(n, [&](Context& ctx) {
            BarrierWaiter waiter(barrier);
            waiter.wait(ctx);
            waiter.wait(ctx);
        });
    }
    m.run(); // completing at all is the assertion
    SUCCEED();
}

TEST(Semaphore, ProducerConsumer)
{
    constexpr unsigned kNodes = 4;
    Machine m(cfgFor(kNodes));
    Semaphore items = Semaphore::create(m, 0, 0, allNodes(kNodes));
    const Addr consumed = m.alloc(kPageBytes, 0);
    // Node 0 produces 3 tokens for each consumer.
    m.spawn(0, [&](Context& ctx) {
        for (unsigned i = 0; i < 3 * (kNodes - 1); ++i) {
            ctx.compute(50);
            items.v(ctx);
        }
    });
    for (NodeId n = 1; n < kNodes; ++n) {
        m.spawn(n, [&, n](Context& ctx) {
            for (unsigned i = 0; i < 3; ++i) {
                items.p(ctx, n);
                ctx.fadd(consumed, 1);
            }
        });
    }
    m.run();
    EXPECT_EQ(m.peek(consumed), 3u * (kNodes - 1));
    EXPECT_EQ(static_cast<std::int32_t>(m.peek(items.valueAddress())), 0);
}

TEST(Semaphore, InitialValueAdmitsWithoutV)
{
    Machine m(cfgFor(2));
    Semaphore sem = Semaphore::create(m, 0, 2, allNodes(2));
    bool done = false;
    m.spawn(0, [&](Context& ctx) {
        sem.p(ctx, 0); // admitted immediately (value 2 -> 1)
        sem.p(ctx, 0); // admitted immediately (value 1 -> 0)
        done = true;
    });
    m.run();
    EXPECT_TRUE(done);
}

TEST(Mailbox, WaitBlocksUntilWake)
{
    Machine m(cfgFor(2));
    const Addr mailbox = m.alloc(kPageBytes, 1);
    Cycles woken_at = 0;
    m.spawn(1, [&](Context& ctx) {
        mailboxWait(ctx, mailbox);
        woken_at = ctx.machine().now();
    });
    m.spawn(0, [&](Context& ctx) {
        ctx.compute(5000);
        mailboxWake(ctx, mailbox);
    });
    m.run();
    EXPECT_GE(woken_at, 5000u);
    // The mailbox is consumed (reset) by the waiter.
    EXPECT_EQ(m.peek(mailbox), 0u);
}

TEST(NodeBarrier, HierarchicalEpisodesWithMultipleThreadsPerNode)
{
    constexpr unsigned kNodes = 4;
    constexpr unsigned kPerNode = 3;
    MachineConfig cfg;
    cfg.nodes = kNodes;
    cfg.framesPerNode = 256;
    cfg.mode = ProcessorMode::ContextSwitch;
    cfg.cost.ctxSwitchCycles = 16;
    Machine m(cfg);
    const Addr counter = m.alloc(kPageBytes, 0);

    std::vector<NodeId> thread_nodes;
    for (NodeId n = 0; n < kNodes; ++n) {
        for (unsigned t = 0; t < kPerNode; ++t) {
            thread_nodes.push_back(n);
        }
    }
    NodeBarrier barrier = NodeBarrier::create(m, thread_nodes, true);
    m.settle();

    bool violated = false;
    unsigned me = 0;
    for (NodeId n = 0; n < kNodes; ++n) {
        for (unsigned t = 0; t < kPerNode; ++t) {
            const unsigned id = me++;
            m.spawn(n, [&, id](Context& ctx) {
                NodeBarrierWaiter waiter(barrier, id);
                for (unsigned e = 1; e <= 10; ++e) {
                    ctx.fadd(counter, 1);
                    waiter.wait(ctx);
                    if (ctx.read(counter) < e * kNodes * kPerNode) {
                        violated = true;
                    }
                    waiter.wait(ctx);
                }
            });
        }
    }
    m.run();
    EXPECT_FALSE(violated);
    EXPECT_EQ(m.peek(counter), 10u * kNodes * kPerNode);
}

TEST(NodeBarrier, SingleThreadPerNodeDegeneratesToFlat)
{
    constexpr unsigned kNodes = 5;
    Machine m(cfgFor(kNodes));
    std::vector<NodeId> thread_nodes = allNodes(kNodes);
    NodeBarrier barrier = NodeBarrier::create(m, thread_nodes, false);
    for (unsigned id = 0; id < kNodes; ++id) {
        m.spawn(id, [&, id](Context& ctx) {
            NodeBarrierWaiter waiter(barrier, id);
            waiter.wait(ctx);
            waiter.wait(ctx);
        });
    }
    m.run();
    SUCCEED();
}

} // namespace
} // namespace core
} // namespace plus
