/**
 * @file
 * Unit tests for the foundation layer: types and address arithmetic,
 * configuration validation, the deterministic RNG, the histogram, and
 * the table printer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/config.hpp"
#include "common/panic.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

namespace plus {
namespace {

// --- types / address arithmetic --------------------------------------------

TEST(Types, PageArithmetic)
{
    EXPECT_EQ(pageOf(0), 0u);
    EXPECT_EQ(pageOf(kPageBytes - 1), 0u);
    EXPECT_EQ(pageOf(kPageBytes), 1u);
    EXPECT_EQ(wordOffsetOf(0), 0u);
    EXPECT_EQ(wordOffsetOf(4), 1u);
    EXPECT_EQ(wordOffsetOf(kPageBytes - 4), kPageWords - 1);
    EXPECT_EQ(pageBase(3), 3 * kPageBytes);
}

TEST(Types, Alignment)
{
    EXPECT_TRUE(wordAligned(0));
    EXPECT_TRUE(wordAligned(4096));
    EXPECT_FALSE(wordAligned(2));
    EXPECT_FALSE(wordAligned(7));
}

TEST(Types, PhysPageFormatting)
{
    EXPECT_EQ(toString(PhysPage{3, 17}), "n3.f17");
    EXPECT_EQ(toString(PhysAddr{{3, 17}, 5}), "n3.f17+o5");
    EXPECT_EQ(toString(PhysPage{}), "<invalid-page>");
}

TEST(Types, FlagMasks)
{
    EXPECT_EQ(kTopBit | kPayloadMask, ~0u);
    EXPECT_EQ(kTopBit & kPayloadMask, 0u);
    EXPECT_EQ(kPageWords * kWordBytes, kPageBytes);
}

// --- configuration -----------------------------------------------------------

TEST(Config, DefaultsValidate)
{
    MachineConfig cfg;
    cfg.validate();
    EXPECT_EQ(cfg.meshWidth(), 4u);
    EXPECT_EQ(cfg.meshHeight(), 4u);
}

TEST(Config, AutomaticMeshIsNearSquare)
{
    MachineConfig cfg;
    cfg.nodes = 7;
    cfg.validate();
    EXPECT_EQ(cfg.meshWidth(), 3u);
    EXPECT_EQ(cfg.meshHeight(), 3u);

    cfg.nodes = 64;
    cfg.validate();
    EXPECT_EQ(cfg.meshWidth(), 8u);
    EXPECT_EQ(cfg.meshHeight(), 8u);
}

TEST(Config, ExplicitMeshWidthRespected)
{
    MachineConfig cfg;
    cfg.nodes = 8;
    cfg.network.meshWidth = 8;
    cfg.validate();
    EXPECT_EQ(cfg.meshWidth(), 8u);
    EXPECT_EQ(cfg.meshHeight(), 1u);
}

TEST(Config, RejectsBadSettings)
{
    {
        MachineConfig cfg;
        cfg.nodes = 0;
        EXPECT_THROW(cfg.validate(), FatalError);
    }
    {
        MachineConfig cfg;
        cfg.cost.pendingWriteEntries = 0;
        EXPECT_THROW(cfg.validate(), FatalError);
    }
    {
        MachineConfig cfg;
        cfg.network.bytesPerCycle = 0.0;
        EXPECT_THROW(cfg.validate(), FatalError);
    }
    {
        MachineConfig cfg;
        cfg.network.meshWidth = 99;
        cfg.nodes = 4;
        EXPECT_THROW(cfg.validate(), FatalError);
    }
    {
        MachineConfig cfg;
        cfg.cost.queueBaseOffset = kPageWords;
        EXPECT_THROW(cfg.validate(), FatalError);
    }
}

TEST(Config, PaperDefaults)
{
    const CostModel cost;
    EXPECT_EQ(cost.procIssueOp, 25u);
    EXPECT_EQ(cost.procReadResult, 10u);
    EXPECT_EQ(cost.cmRmwSimple, 39u);
    EXPECT_EQ(cost.cmRmwComplex, 52u);
    EXPECT_EQ(cost.pendingWriteEntries, 8u);
    EXPECT_EQ(cost.delayedOpEntries, 8u);
    const NetworkConfig net;
    // 24-cycle adjacent round trip: 2 * (10 + 2).
    EXPECT_EQ(2 * (net.fixedCycles + net.perHopCycles), 24u);
    EXPECT_DOUBLE_EQ(net.bytesPerCycle, 0.8); // 20 MB/s at 40 ns
}

// --- RNG ---------------------------------------------------------------------

TEST(Rng, DeterministicForSeed)
{
    Xoshiro256 a(7);
    Xoshiro256 b(7);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a(), b());
    }
}

TEST(Rng, DifferentSeedsDiffer)
{
    Xoshiro256 a(1);
    Xoshiro256 b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        same += (a() == b());
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInBounds)
{
    Xoshiro256 rng(3);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.below(17), 17u);
    }
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(rng.below(1), 0u);
    }
}

TEST(Rng, RangeIsInclusive)
{
    Xoshiro256 rng(4);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        saw_lo |= (v == 5);
        saw_hi |= (v == 8);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformCoversUnitInterval)
{
    Xoshiro256 rng(5);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

// --- Histogram ----------------------------------------------------------------

TEST(Histogram, BasicMoments)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    for (double v : {1.0, 2.0, 3.0, 4.0}) {
        h.record(v);
    }
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.min(), 1.0);
    EXPECT_EQ(h.max(), 4.0);
    EXPECT_DOUBLE_EQ(h.mean(), 2.5);
    EXPECT_DOUBLE_EQ(h.sum(), 10.0);
}

TEST(Histogram, Percentiles)
{
    Histogram h;
    for (int i = 1; i <= 100; ++i) {
        h.record(i);
    }
    EXPECT_EQ(h.percentile(0), 1.0);
    EXPECT_EQ(h.percentile(100), 100.0);
    EXPECT_NEAR(h.median(), 50.0, 1.0);
    EXPECT_NEAR(h.percentile(90), 90.0, 1.0);
}

TEST(Histogram, MergeAndClear)
{
    Histogram a;
    Histogram b;
    a.record(1);
    b.record(3);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    a.clear();
    EXPECT_EQ(a.count(), 0u);
}

TEST(Histogram, RecordAfterPercentileKeepsOrderCorrect)
{
    Histogram h;
    h.record(5);
    EXPECT_EQ(h.median(), 5.0);
    h.record(1); // re-sorts lazily
    EXPECT_EQ(h.percentile(0), 1.0);
}

TEST(Histogram, EmptyIsZeroEverywhere)
{
    const Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0.0);
    EXPECT_EQ(h.min(), 0.0);
    EXPECT_EQ(h.max(), 0.0);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(0), 0.0);
    EXPECT_EQ(h.median(), 0.0);
    EXPECT_EQ(h.percentile(100), 0.0);
}

TEST(Histogram, SingleSampleAtEveryPercentile)
{
    Histogram h;
    h.record(7);
    EXPECT_EQ(h.percentile(0), 7.0);
    EXPECT_EQ(h.median(), 7.0);
    EXPECT_EQ(h.percentile(100), 7.0);
    EXPECT_EQ(h.min(), 7.0);
    EXPECT_EQ(h.max(), 7.0);
    EXPECT_DOUBLE_EQ(h.mean(), 7.0);
}

TEST(Histogram, NearestRankBoundaries)
{
    Histogram h;
    for (double v : {10.0, 20.0, 30.0, 40.0}) {
        h.record(v);
    }
    // rank(p) = round(p/100 * (n-1)) over the sorted samples.
    EXPECT_EQ(h.percentile(0), 10.0);
    EXPECT_EQ(h.percentile(25), 20.0);  // rank 1.25 -> 1
    EXPECT_EQ(h.percentile(50), 30.0);  // rank 2
    EXPECT_EQ(h.percentile(100), 40.0); // clamped to n-1
}

TEST(Histogram, PercentileOutOfRangePanics)
{
    Histogram h;
    h.record(1);
    EXPECT_THROW(h.percentile(-1), PanicError);
    EXPECT_THROW(h.percentile(101), PanicError);
}

TEST(Histogram, MergeIntoEmptyAndFromEmpty)
{
    Histogram filled;
    filled.record(2);
    filled.record(8);

    Histogram empty;
    empty.merge(filled); // into empty: adopts the samples
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_EQ(empty.min(), 2.0);
    EXPECT_EQ(empty.max(), 8.0);

    const Histogram nothing;
    filled.merge(nothing); // from empty: no-op
    EXPECT_EQ(filled.count(), 2u);
    EXPECT_DOUBLE_EQ(filled.sum(), 10.0);
}

TEST(Histogram, ClearResetsExtremaForReuse)
{
    Histogram h;
    h.record(1000);
    h.record(-1000);
    h.clear();
    h.record(5);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.min(), 5.0);
    EXPECT_EQ(h.max(), 5.0);
    EXPECT_DOUBLE_EQ(h.sum(), 5.0);
}

// --- TablePrinter ---------------------------------------------------------------

TEST(Table, AlignsColumns)
{
    TablePrinter t("Title");
    t.setHeader({"a", "long-header", "c"});
    t.addRow({"1", "2", "3"});
    t.addRow({"wide-cell", "4", "5"});
    const std::string out = t.toString();
    EXPECT_NE(out.find("Title"), std::string::npos);
    EXPECT_NE(out.find("long-header"), std::string::npos);
    EXPECT_NE(out.find("wide-cell"), std::string::npos);
    // Separator line present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, RowWidthMismatchPanics)
{
    TablePrinter t;
    t.setHeader({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::num(std::uint64_t{42}), "42");
}

TEST(Stats, SafeRatio)
{
    EXPECT_EQ(safeRatio(4, 2), 2.0);
    EXPECT_EQ(safeRatio(4, 0), 0.0);
    EXPECT_EQ(safeRatio(0, 0), 0.0);
    EXPECT_EQ(safeRatio(-6, 3), -2.0);
    EXPECT_EQ(safeRatio(0, 5), 0.0);
}

} // namespace
} // namespace plus
