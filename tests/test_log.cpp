/**
 * @file
 * Tests of the component-tagged trace logging: per-component gating,
 * simulated-clock stamping, and stream redirection.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/log.hpp"
#include "sim/engine.hpp"

namespace plus {
namespace {

class LogTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Log::instance().disableAll();
        Log::instance().setStream(&out_);
    }

    void
    TearDown() override
    {
        Log::instance().disableAll();
        Log::instance().setStream(nullptr);
        Log::instance().setClock(nullptr);
    }

    std::ostringstream out_;
};

TEST_F(LogTest, DisabledComponentIsSilent)
{
    PLUS_LOG(LogComponent::Proto, "should not appear");
    EXPECT_TRUE(out_.str().empty());
}

TEST_F(LogTest, EnabledComponentWrites)
{
    Log::instance().enable(LogComponent::Proto);
    PLUS_LOG(LogComponent::Proto, "hello ", 42);
    EXPECT_NE(out_.str().find("proto: hello 42"), std::string::npos);
}

TEST_F(LogTest, ComponentsAreIndependent)
{
    Log::instance().enable(LogComponent::Net);
    PLUS_LOG(LogComponent::Proto, "nope");
    PLUS_LOG(LogComponent::Net, "yes");
    const std::string s = out_.str();
    EXPECT_EQ(s.find("nope"), std::string::npos);
    EXPECT_NE(s.find("net: yes"), std::string::npos);
}

TEST_F(LogTest, ClockStampsMessages)
{
    sim::Engine engine; // registers itself as the clock
    Log::instance().setStream(&out_);
    Log::instance().enable(LogComponent::Engine);
    engine.schedule(123, [] { PLUS_LOG(LogComponent::Engine, "tick"); });
    engine.run();
    EXPECT_NE(out_.str().find("[123] engine: tick"), std::string::npos);
}

TEST_F(LogTest, EnableAllCoversEveryComponent)
{
    Log::instance().enableAll();
    for (unsigned c = 0;
         c < static_cast<unsigned>(LogComponent::NumComponents); ++c) {
        EXPECT_TRUE(
            Log::instance().isEnabled(static_cast<LogComponent>(c)));
    }
}

TEST_F(LogTest, ComponentNamesAreStable)
{
    EXPECT_STREQ(logComponentName(LogComponent::Machine), "machine");
    EXPECT_STREQ(logComponentName(LogComponent::Workload), "workload");
}

TEST_F(LogTest, ComponentFromNameRoundTrips)
{
    for (unsigned i = 0;
         i < static_cast<unsigned>(LogComponent::NumComponents); ++i) {
        const auto c = static_cast<LogComponent>(i);
        LogComponent parsed{};
        ASSERT_TRUE(Log::componentFromName(logComponentName(c), parsed));
        EXPECT_EQ(parsed, c);
    }
    LogComponent unused{};
    EXPECT_FALSE(Log::componentFromName("bogus", unused));
    EXPECT_FALSE(Log::componentFromName("", unused));
    EXPECT_FALSE(Log::componentFromName("Proto", unused)); // case-sensitive
}

TEST_F(LogTest, EnvSpecEnablesListedComponents)
{
    Log::instance().applyEnvSpec("proto,net");
    EXPECT_TRUE(Log::instance().isEnabled(LogComponent::Proto));
    EXPECT_TRUE(Log::instance().isEnabled(LogComponent::Net));
    EXPECT_FALSE(Log::instance().isEnabled(LogComponent::Engine));
    EXPECT_FALSE(Log::instance().isEnabled(LogComponent::Mem));
}

TEST_F(LogTest, EnvSpecAcceptsAlternativeSeparators)
{
    Log::instance().applyEnvSpec("engine; mem  thread,");
    EXPECT_TRUE(Log::instance().isEnabled(LogComponent::Engine));
    EXPECT_TRUE(Log::instance().isEnabled(LogComponent::Mem));
    EXPECT_TRUE(Log::instance().isEnabled(LogComponent::Thread));
    EXPECT_FALSE(Log::instance().isEnabled(LogComponent::Proto));
}

TEST_F(LogTest, EnvSpecAllEnablesEverything)
{
    Log::instance().applyEnvSpec("all");
    for (unsigned c = 0;
         c < static_cast<unsigned>(LogComponent::NumComponents); ++c) {
        EXPECT_TRUE(
            Log::instance().isEnabled(static_cast<LogComponent>(c)));
    }
}

TEST_F(LogTest, EnvSpecSkipsUnknownNamesAndNull)
{
    Log::instance().applyEnvSpec(nullptr); // no-op
    Log::instance().applyEnvSpec("");      // no-op
    // Unknown names warn on stderr but still apply the valid ones.
    testing::internal::CaptureStderr();
    Log::instance().applyEnvSpec("bogus,node");
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("bogus"), std::string::npos);
    EXPECT_TRUE(Log::instance().isEnabled(LogComponent::Node));
    EXPECT_FALSE(Log::instance().isEnabled(LogComponent::Proto));
}

} // namespace
} // namespace plus
