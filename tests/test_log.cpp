/**
 * @file
 * Tests of the component-tagged trace logging: per-component gating,
 * simulated-clock stamping, and stream redirection.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/log.hpp"
#include "sim/engine.hpp"

namespace plus {
namespace {

class LogTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Log::instance().disableAll();
        Log::instance().setStream(&out_);
    }

    void
    TearDown() override
    {
        Log::instance().disableAll();
        Log::instance().setStream(nullptr);
        Log::instance().setClock(nullptr);
    }

    std::ostringstream out_;
};

TEST_F(LogTest, DisabledComponentIsSilent)
{
    PLUS_LOG(LogComponent::Proto, "should not appear");
    EXPECT_TRUE(out_.str().empty());
}

TEST_F(LogTest, EnabledComponentWrites)
{
    Log::instance().enable(LogComponent::Proto);
    PLUS_LOG(LogComponent::Proto, "hello ", 42);
    EXPECT_NE(out_.str().find("proto: hello 42"), std::string::npos);
}

TEST_F(LogTest, ComponentsAreIndependent)
{
    Log::instance().enable(LogComponent::Net);
    PLUS_LOG(LogComponent::Proto, "nope");
    PLUS_LOG(LogComponent::Net, "yes");
    const std::string s = out_.str();
    EXPECT_EQ(s.find("nope"), std::string::npos);
    EXPECT_NE(s.find("net: yes"), std::string::npos);
}

TEST_F(LogTest, ClockStampsMessages)
{
    sim::Engine engine; // registers itself as the clock
    Log::instance().setStream(&out_);
    Log::instance().enable(LogComponent::Engine);
    engine.schedule(123, [] { PLUS_LOG(LogComponent::Engine, "tick"); });
    engine.run();
    EXPECT_NE(out_.str().find("[123] engine: tick"), std::string::npos);
}

TEST_F(LogTest, EnableAllCoversEveryComponent)
{
    Log::instance().enableAll();
    for (unsigned c = 0;
         c < static_cast<unsigned>(LogComponent::NumComponents); ++c) {
        EXPECT_TRUE(
            Log::instance().isEnabled(static_cast<LogComponent>(c)));
    }
}

TEST_F(LogTest, ComponentNamesAreStable)
{
    EXPECT_STREQ(logComponentName(LogComponent::Machine), "machine");
    EXPECT_STREQ(logComponentName(LogComponent::Workload), "workload");
}

} // namespace
} // namespace plus
