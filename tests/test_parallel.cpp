/**
 * @file
 * The conservative-parallel engine's determinism contract: on the
 * harness workload (replicated-page update chains, remote reads,
 * delayed interlocked operations, fences) the parallel backend must
 * produce a final cycle count, memory image, and statistics report
 * identical to the serial wheel and heap backends, at every thread
 * count — and the parallel engine must actually be running worker
 * domains, not quietly falling back to the serial path.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <functional>
#include <vector>

#include "common/panic.hpp"
#include "core/context.hpp"
#include "plus/plus.hpp"
#include "sim/engine.hpp"

namespace plus {
namespace {

constexpr unsigned kNodes = 8;
constexpr unsigned kCopies = 3;

struct RunOutcome {
    Cycles elapsed = 0;
    std::vector<Word> image;
    core::MachineReport report;
    std::uint64_t executed = 0;
};

/** The sim_harness mixed workload, shrunk to unit-test size. */
RunOutcome
runHarness(Engine backend, unsigned threads, unsigned domains = 0)
{
    auto machine_ptr = MachineBuilder()
                           .nodes(kNodes)
                           .framesPerNode(64)
                           .engine(backend)
                           .threads(threads)
                           .domains(domains)
                           .build();
    core::Machine& m = *machine_ptr;
    if (backend == Engine::Parallel && threads > 1) {
        EXPECT_TRUE(m.engine().parallelActive())
            << "parallel backend fell back to serial at " << threads
            << " threads";
    } else {
        EXPECT_FALSE(m.engine().parallelActive());
    }

    std::vector<Addr> pages(kNodes);
    for (NodeId n = 0; n < kNodes; ++n) {
        pages[n] = m.alloc(kPageBytes, n);
        for (unsigned c = 1; c < kCopies; ++c) {
            m.replicate(pages[n], (n + c) % kNodes);
        }
    }
    const Addr counter = m.alloc(kPageBytes, 0);
    m.settle();

    for (NodeId n = 0; n < kNodes; ++n) {
        m.spawn(n, [&pages, counter, n](core::Context& ctx) {
            const Addr own = pages[n];
            const Addr peer = pages[(n + 1) % kNodes];
            std::deque<core::OpHandle> window;
            for (Word i = 0; i < 16; ++i) {
                ctx.write(own + 4 * (i % 8), n * 1000 + i);
                ctx.read(peer + 4 * (i % 8));
                ctx.compute(15);
                if (i % 4 == 0) {
                    window.push_back(ctx.issueFadd(counter, 1));
                }
                if (window.size() > 2) {
                    ctx.verify(window.front());
                    window.pop_front();
                }
            }
            while (!window.empty()) {
                ctx.verify(window.front());
                window.pop_front();
            }
            ctx.fence();
        });
    }
    m.run();

    RunOutcome out;
    out.elapsed = m.now();
    for (NodeId n = 0; n < kNodes; ++n) {
        for (Word off = 0; off < 64; off += 4) {
            out.image.push_back(m.peek(pages[n] + off));
        }
    }
    out.image.push_back(m.peek(counter));
    out.report = m.report();
    out.executed = m.engine().executedEvents();
    return out;
}

void
expectIdentical(const RunOutcome& ref, const RunOutcome& got,
                const char* label)
{
    EXPECT_EQ(ref.elapsed, got.elapsed) << label;
    EXPECT_EQ(ref.image, got.image) << label;
    EXPECT_EQ(ref.report.localReads, got.report.localReads) << label;
    EXPECT_EQ(ref.report.remoteReads, got.report.remoteReads) << label;
    EXPECT_EQ(ref.report.localWrites, got.report.localWrites) << label;
    EXPECT_EQ(ref.report.remoteWrites, got.report.remoteWrites) << label;
    EXPECT_EQ(ref.report.updateMessages, got.report.updateMessages)
        << label;
    EXPECT_EQ(ref.report.totalMessages, got.report.totalMessages)
        << label;
    EXPECT_EQ(ref.executed, got.executed) << label;
}

TEST(Parallel, CrossBackendIdentity)
{
    const RunOutcome wheel = runHarness(Engine::Wheel, 0);
    ASSERT_FALSE(wheel.image.empty());

    expectIdentical(wheel, runHarness(Engine::Heap, 0), "heap");
    expectIdentical(wheel, runHarness(Engine::Parallel, 2),
                    "parallel t=2");
    expectIdentical(wheel, runHarness(Engine::Parallel, 4),
                    "parallel t=4");
    expectIdentical(wheel, runHarness(Engine::Parallel, 8),
                    "parallel t=8");
}

TEST(Parallel, SingleThreadDegradesToSerial)
{
    // threads=1 is legal and must match too (no worker pool spun up).
    const RunOutcome wheel = runHarness(Engine::Wheel, 0);
    expectIdentical(wheel, runHarness(Engine::Parallel, 1),
                    "parallel t=1");
}

TEST(Parallel, ValidateRejectsMoreThreadsThanNodes)
{
    EXPECT_THROW(MachineBuilder()
                     .nodes(4)
                     .framesPerNode(64)
                     .engine(Engine::Parallel)
                     .threads(8)
                     .build(),
                 FatalError);
}

TEST(Parallel, DomainsDecoupledFromThreads)
{
    // Byte-identity must hold at every (threads, domains) split,
    // including 1-node domains (8 domains over 8 nodes).
    const RunOutcome wheel = runHarness(Engine::Wheel, 0);
    expectIdentical(wheel, runHarness(Engine::Parallel, 2, 8),
                    "parallel t=2 d=8");
    expectIdentical(wheel, runHarness(Engine::Parallel, 4, 8),
                    "parallel t=4 d=8");
    expectIdentical(wheel, runHarness(Engine::Parallel, 8, 8),
                    "parallel t=8 d=8");
    expectIdentical(wheel, runHarness(Engine::Parallel, 2, 4),
                    "parallel t=2 d=4");
}

TEST(Parallel, SingleDomainFallsBackToSerialPath)
{
    // One domain cannot overlap with anything: the engine must drop to
    // the serial path rather than spin one worker forever.
    const RunOutcome wheel = runHarness(Engine::Wheel, 0);
    expectIdentical(wheel, runHarness(Engine::Parallel, 1, 1),
                    "parallel t=1 d=1");
}

TEST(Parallel, ValidateRejectsBadDomainCounts)
{
    // Not a multiple of the thread count.
    EXPECT_THROW(MachineBuilder()
                     .nodes(kNodes)
                     .framesPerNode(64)
                     .engine(Engine::Parallel)
                     .threads(2)
                     .domains(3)
                     .build(),
                 FatalError);
    // More domains than nodes.
    EXPECT_THROW(MachineBuilder()
                     .nodes(4)
                     .framesPerNode(64)
                     .engine(Engine::Parallel)
                     .threads(2)
                     .domains(8)
                     .build(),
                 FatalError);
}

TEST(Parallel, RejectsZeroLookaheadMatrixEntry)
{
    sim::Engine eng(sim::EngineImpl::Parallel);
    eng.configure(4, 2, 2);
    ASSERT_TRUE(eng.parallelActive());
    eng.setLookahead(1);
    std::vector<Cycles> flat{0, 1, 0, 0}; // [1][0] == 0: unusable
    EXPECT_THROW(eng.setLookaheadMatrix(std::move(flat)), FatalError);
}

TEST(Parallel, SpinBarrierTorture)
{
    // Minimal-lookahead cross-domain ping-pong chains: every hop ends
    // the window, so the run is almost pure barrier traffic. Repeated
    // short runs exercise worker park/wake across run() boundaries.
    // Primarily a ThreadSanitizer target (ci.sh tsan stage).
    sim::Engine eng(sim::EngineImpl::Parallel);
    eng.configure(kNodes, 4, kNodes);
    ASSERT_TRUE(eng.parallelActive());
    eng.setLookahead(2);
    std::vector<Cycles> flat(kNodes * kNodes, 2);
    for (unsigned i = 0; i < kNodes; ++i) {
        flat[i * kNodes + i] = 0;
    }
    eng.setLookaheadMatrix(std::move(flat));
    eng.setNodeMachineMailHint(false);

    std::atomic<std::uint64_t> fired{0};
    std::function<void(NodeId, unsigned)> bounce =
        [&](NodeId lane, unsigned hops_left) {
            fired.fetch_add(1, std::memory_order_relaxed);
            if (hops_left == 0) {
                return;
            }
            const NodeId next = (lane + 1) % kNodes;
            eng.scheduleForNode(next, 2, [&bounce, next, hops_left] {
                bounce(next, hops_left - 1);
            });
        };

    constexpr unsigned kRounds = 8;
    constexpr unsigned kHops = 64;
    for (unsigned round = 0; round < kRounds; ++round) {
        for (NodeId n = 0; n < kNodes; ++n) {
            eng.withNodeContext(n, [&] {
                eng.scheduleForNode(n, 1, [&bounce, n] {
                    bounce(n, kHops);
                });
            });
        }
        eng.run();
    }
    EXPECT_EQ(fired.load(),
              std::uint64_t{kRounds} * kNodes * (kHops + 1));
}

} // namespace
} // namespace plus
