/**
 * @file
 * Tests of the telemetry subsystem: the metrics registry, the bounded
 * event ring, the machine-installed tracer, the Perfetto/stats JSON
 * exporters, and the guarantee that tracing never perturbs a run.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "core/context.hpp"
#include "core/machine.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/tracer.hpp"

namespace plus {
namespace telemetry {
namespace {

// --- MetricsRegistry --------------------------------------------------------

TEST(MetricsRegistry, SnapshotReadsSourcesAtCallTime)
{
    MetricsRegistry reg;
    std::uint64_t counter = 0;
    double gauge = 0.0;
    Histogram hist;
    reg.addCounter("c", [&] { return counter; });
    reg.addGauge("g", [&] { return gauge; });
    reg.addDistribution("d", &hist);
    EXPECT_EQ(reg.size(), 3u);

    counter = 7;
    gauge = 2.5;
    hist.record(10);
    hist.record(30);

    const auto snap = reg.snapshot(123);
    EXPECT_EQ(snap.cycle, 123u);
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].first, "c");
    EXPECT_EQ(snap.counters[0].second, 7u);
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_DOUBLE_EQ(snap.gauges[0].second, 2.5);
    ASSERT_EQ(snap.distributions.size(), 1u);
    EXPECT_EQ(snap.distributions[0].second.count, 2u);
    EXPECT_DOUBLE_EQ(snap.distributions[0].second.mean, 20.0);
    EXPECT_DOUBLE_EQ(snap.distributions[0].second.max, 30.0);
}

TEST(MetricsRegistry, DuplicateNamesAreUniqued)
{
    MetricsRegistry reg;
    reg.addCounter("x", [] { return std::uint64_t{1}; });
    reg.addCounter("x", [] { return std::uint64_t{2}; });
    const auto snap = reg.snapshot(0);
    ASSERT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters[0].first, "x");
    EXPECT_EQ(snap.counters[1].first, "x#2");
}

TEST(MetricsRegistry, TableAndJsonRenderAllSources)
{
    MetricsRegistry reg;
    Histogram hist;
    hist.record(4);
    reg.addCounter("net.packets", [] { return std::uint64_t{42}; });
    reg.addGauge("load", [] { return 0.5; });
    reg.addDistribution("lat", &hist);
    const auto snap = reg.snapshot(9);

    const std::string table = MetricsRegistry::renderTable(snap);
    EXPECT_NE(table.find("net.packets"), std::string::npos);
    EXPECT_NE(table.find("42"), std::string::npos);
    EXPECT_NE(table.find("lat"), std::string::npos);

    std::ostringstream os;
    MetricsRegistry::writeJson(os, snap);
    const std::string json = os.str();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"cycle\":9"), std::string::npos);
    EXPECT_NE(json.find("\"net.packets\":42"), std::string::npos);
    EXPECT_NE(json.find("\"distributions\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
    EXPECT_NE(json.find("\"p95\""), std::string::npos);
    EXPECT_NE(json.find("\"p999\""), std::string::npos);
}

TEST(MetricsRegistry, PercentilesMatchKnownDistributions)
{
    // 1..1000 inserted in a scrambled order: nearest-rank percentiles
    // have closed-form expectations (rank = round(p/100 * (n-1))).
    MetricsRegistry reg;
    Histogram hist;
    for (int i = 0; i < 1000; ++i) {
        hist.record(static_cast<double>((i * 617) % 1000 + 1));
    }
    reg.addDistribution("u", &hist);
    const auto snap = reg.snapshot(0);
    ASSERT_EQ(snap.distributions.size(), 1u);
    const DistSummary& d = snap.distributions[0].second;
    EXPECT_EQ(d.count, 1000u);
    EXPECT_DOUBLE_EQ(d.min, 1.0);
    EXPECT_DOUBLE_EQ(d.max, 1000.0);
    EXPECT_DOUBLE_EQ(d.p50, 501.0);
    EXPECT_DOUBLE_EQ(d.p90, 900.0);
    EXPECT_DOUBLE_EQ(d.p95, 950.0);
    EXPECT_DOUBLE_EQ(d.p99, 990.0);
    EXPECT_DOUBLE_EQ(d.p999, 999.0);

    // A 1-in-100 outlier: p99 rounds to rank 98 (still the common
    // value); only the p99.9 tail and the max land on the spike.
    Histogram spike;
    for (int i = 0; i < 99; ++i) {
        spike.record(1.0);
    }
    spike.record(100.0);
    EXPECT_DOUBLE_EQ(spike.percentile(50.0), 1.0);
    EXPECT_DOUBLE_EQ(spike.percentile(99.0), 1.0);
    EXPECT_DOUBLE_EQ(spike.percentile(99.9), 100.0);
    EXPECT_DOUBLE_EQ(spike.percentile(100.0), 100.0);
}

// --- EventRing --------------------------------------------------------------

TraceEvent
eventAt(Cycles t)
{
    TraceEvent e;
    e.kind = TraceKind::Fence;
    e.begin = e.end = t;
    return e;
}

TEST(EventRing, KeepsEverythingBelowCapacity)
{
    EventRing ring(4);
    for (Cycles t = 0; t < 3; ++t) {
        ring.push(eventAt(t));
    }
    EXPECT_EQ(ring.recorded(), 3u);
    EXPECT_EQ(ring.dropped(), 0u);
    std::vector<Cycles> seen;
    ring.forEach([&](const TraceEvent& e) { seen.push_back(e.begin); });
    EXPECT_EQ(seen, (std::vector<Cycles>{0, 1, 2}));
}

TEST(EventRing, WrapKeepsNewestOldestFirst)
{
    EventRing ring(3);
    for (Cycles t = 0; t < 7; ++t) {
        ring.push(eventAt(t));
    }
    EXPECT_EQ(ring.recorded(), 7u);
    EXPECT_EQ(ring.dropped(), 4u);
    std::vector<Cycles> seen;
    ring.forEach([&](const TraceEvent& e) { seen.push_back(e.begin); });
    EXPECT_EQ(seen, (std::vector<Cycles>{4, 5, 6}));
}

// --- Machine integration ----------------------------------------------------

MachineConfig
tracedConfig(unsigned nodes)
{
    MachineConfig cfg;
    cfg.nodes = nodes;
    cfg.framesPerNode = 64;
    cfg.telemetry.trace = true;
    return cfg;
}

/** Replicated-page writes + remote reads + a delayed fadd + fences. */
void
runMixedWorkload(core::Machine& m, Addr shared, Addr counter)
{
    for (NodeId n = 0; n < m.config().nodes; ++n) {
        m.spawn(n, [shared, counter, n](core::Context& ctx) {
            for (Word i = 0; i < 8; ++i) {
                ctx.write(shared + 4 * ((n * 8 + i) % 64), n * 100 + i);
                ctx.read(shared + 4 * (i % 64));
                ctx.compute(10);
            }
            const auto h = ctx.issueFadd(counter, 1);
            ctx.verify(h);
            ctx.fence();
        });
    }
    m.run();
}

struct TracedRun {
    TracedRun(unsigned nodes, bool traced)
        : machine(traced ? tracedConfig(nodes)
                         : [nodes] {
                               MachineConfig cfg;
                               cfg.nodes = nodes;
                               cfg.framesPerNode = 64;
                               return cfg;
                           }())
    {
        shared = machine.alloc(kPageBytes, 0);
        for (NodeId n = 1; n < nodes; ++n) {
            machine.replicate(shared, n);
        }
        counter = machine.alloc(kPageBytes, 1);
        machine.settle();
        runMixedWorkload(machine, shared, counter);
    }

    core::Machine machine;
    Addr shared = 0;
    Addr counter = 0;
};

TEST(Telemetry, MachineRecordsAllEventKinds)
{
    TracedRun run(4, true);
    const Telemetry* t = run.machine.telemetry();
    ASSERT_NE(t, nullptr);
    EXPECT_GT(t->events().recorded(), 0u);

    std::set<TraceKind> kinds;
    t->events().forEach(
        [&](const TraceEvent& e) { kinds.insert(e.kind); });
    EXPECT_TRUE(kinds.count(TraceKind::MsgSend));
    EXPECT_TRUE(kinds.count(TraceKind::MsgRecv));
    EXPECT_TRUE(kinds.count(TraceKind::LinkBusy));
    EXPECT_TRUE(kinds.count(TraceKind::PendingWrite));
    EXPECT_TRUE(kinds.count(TraceKind::ChainApply));
    EXPECT_TRUE(kinds.count(TraceKind::Fence));
    EXPECT_TRUE(kinds.count(TraceKind::RmwIssue));
    EXPECT_TRUE(kinds.count(TraceKind::RmwVerify));
}

TEST(Telemetry, AttributesTrafficToPagesAndLinks)
{
    TracedRun run(4, true);
    const Telemetry* t = run.machine.telemetry();
    ASSERT_NE(t, nullptr);

    // The replicated shared page must show update traffic.
    const auto& pages = t->pageTraffic();
    const auto it = pages.find(pageOf(run.shared));
    ASSERT_NE(it, pages.end());
    EXPECT_GT(it->second.messages, 0u);
    EXPECT_GT(it->second.updates, 0u);

    // Some mesh link carried bytes and was busy for cycles.
    const auto& links = t->linkTraffic();
    ASSERT_FALSE(links.empty());
    std::uint64_t bytes = 0;
    Cycles busy = 0;
    for (const auto& [key, traffic] : links) {
        bytes += traffic.bytes;
        busy += traffic.busyCycles;
    }
    EXPECT_GT(bytes, 0u);
    EXPECT_GT(busy, 0u);

    // Message-latency distributions filled in for the update class.
    EXPECT_GT(t->latencyOf(proto::MsgType::UpdateReq).count(), 0u);
    EXPECT_GT(t->pendingLifetime().count(), 0u);
}

TEST(Telemetry, MachineMetricsSnapshotCoversSubsystems)
{
    TracedRun run(4, true);
    const auto snap = run.machine.metricsSnapshot();
    EXPECT_EQ(snap.cycle, run.machine.now());

    std::set<std::string> names;
    for (const auto& [name, value] : snap.counters) {
        names.insert(name);
    }
    for (const char* expected :
         {"cm.localWrites", "cm.remoteWrites", "net.packets",
          "proc.reads", "cache.hits", "telemetry.events.recorded"}) {
        EXPECT_TRUE(names.count(expected)) << "missing " << expected;
    }
    // The run did work, so the headline counters moved.
    for (const auto& [name, value] : snap.counters) {
        if (name == "net.packets" || name == "proc.reads") {
            EXPECT_GT(value, 0u) << name;
        }
    }
}

TEST(Telemetry, TraceExportIsWellFormedPerfettoJson)
{
    TracedRun run(4, true);
    std::ostringstream os;
    run.machine.writeTraceJson(os);
    const std::string json = os.str();

    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json[json.find_last_not_of('\n')], '}');
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    // Per-node and per-link tracks.
    EXPECT_NE(json.find("process_name"), std::string::npos);
    EXPECT_NE(json.find("node 0"), std::string::npos);
    EXPECT_NE(json.find("link"), std::string::npos);
    EXPECT_NE(json.find("\"pid\":1000"), std::string::npos);
    // At least one update-chain flow event (start and finish arrows).
    EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
    // Pending writes as async spans.
    EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);

    // Balanced braces/brackets (cheap well-formedness proxy).
    long depth = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
        const char c = json[i];
        if (in_string) {
            if (c == '\\') {
                ++i;
            } else if (c == '"') {
                in_string = false;
            }
            continue;
        }
        if (c == '"') {
            in_string = true;
        } else if (c == '{' || c == '[') {
            ++depth;
        } else if (c == '}' || c == ']') {
            --depth;
            EXPECT_GE(depth, 0);
        }
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(in_string);
}

TEST(Telemetry, StatsExportCombinesMetricsAndTraffic)
{
    TracedRun run(4, true);
    std::ostringstream os;
    run.machine.writeStatsJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"metrics\""), std::string::npos);
    EXPECT_NE(json.find("\"traffic\""), std::string::npos);
    EXPECT_NE(json.find("\"perPage\""), std::string::npos);
    EXPECT_NE(json.find("\"perLink\""), std::string::npos);
    EXPECT_NE(json.find("\"busyCycles\""), std::string::npos);
}

TEST(Telemetry, StatsExportWorksWithoutTracer)
{
    MachineConfig cfg;
    cfg.nodes = 2;
    cfg.framesPerNode = 64;
    core::Machine m(cfg);
    EXPECT_EQ(m.telemetry(), nullptr);
    std::ostringstream os;
    m.writeStatsJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"metrics\""), std::string::npos);
    EXPECT_NE(json.find("\"perPage\":[]"), std::string::npos);
}

TEST(Telemetry, TracingDoesNotPerturbTheRun)
{
    TracedRun traced(4, true);
    TracedRun plain(4, false);

    // Cycle-for-cycle identical: same finish time, same protocol work.
    EXPECT_EQ(traced.machine.now(), plain.machine.now());
    const auto a = traced.machine.report();
    const auto b = plain.machine.report();
    EXPECT_EQ(a.totalMessages, b.totalMessages);
    EXPECT_EQ(a.updateMessages, b.updateMessages);
    EXPECT_EQ(a.localReads, b.localReads);
    EXPECT_EQ(a.remoteReads, b.remoteReads);
    EXPECT_EQ(a.localWrites, b.localWrites);
    EXPECT_EQ(a.remoteWrites, b.remoteWrites);
    EXPECT_EQ(traced.machine.peek(traced.counter),
              plain.machine.peek(plain.counter));
}

TEST(Telemetry, RingCapacityIsRespected)
{
    MachineConfig cfg;
    cfg.nodes = 4;
    cfg.framesPerNode = 64;
    cfg.telemetry.trace = true;
    cfg.telemetry.ringCapacity = 16;
    core::Machine m(cfg);
    const Addr page = m.alloc(kPageBytes, 3);
    m.spawn(0, [page](core::Context& ctx) {
        for (Word i = 0; i < 32; ++i) {
            ctx.write(page + 4 * (i % 16), i);
        }
        ctx.fence();
    });
    m.run();
    const Telemetry* t = m.telemetry();
    ASSERT_NE(t, nullptr);
    EXPECT_GT(t->events().recorded(), 16u);
    EXPECT_EQ(t->events().dropped(), t->events().recorded() - 16u);
    std::size_t retained = 0;
    t->events().forEach([&](const TraceEvent&) { ++retained; });
    EXPECT_EQ(retained, 16u);
}

TEST(Telemetry, RingOverflowIsCountedInMetricsSnapshot)
{
    // Ring overflow used to be silent truncation; now every overwrite
    // shows up as telemetry.trace.dropped in the metrics snapshot.
    MachineConfig cfg;
    cfg.nodes = 4;
    cfg.framesPerNode = 64;
    cfg.telemetry.trace = true;
    cfg.telemetry.ringCapacity = 16;
    core::Machine m(cfg);
    const Addr page = m.alloc(kPageBytes, 3);
    m.spawn(0, [page](core::Context& ctx) {
        for (Word i = 0; i < 32; ++i) {
            ctx.write(page + 4 * (i % 16), i);
        }
        ctx.fence();
    });
    m.run();

    const Telemetry* t = m.telemetry();
    ASSERT_NE(t, nullptr);
    const std::uint64_t expected = t->events().dropped();
    ASSERT_GT(expected, 0u);

    const auto snap = m.metricsSnapshot();
    bool found = false;
    for (const auto& [name, value] : snap.counters) {
        if (name == "telemetry.trace.dropped") {
            found = true;
            EXPECT_EQ(value, expected);
        }
    }
    EXPECT_TRUE(found) << "telemetry.trace.dropped missing from snapshot";
}

} // namespace
} // namespace telemetry
} // namespace plus
