/**
 * @file
 * Fault injection and reliable delivery: every injected fault class —
 * drop, duplicate, corrupt, delay, link kill — must be invisible to the
 * protocol layer (exactly-once, in-order delivery per (src,dst)), and
 * the failure backstops (retransmit-budget panic, forward-progress
 * watchdog) must convert permanent partitions into diagnoses. The
 * link-layer tests run under both engine backends: fault recovery must
 * not depend on the event queue implementation.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/panic.hpp"
#include "core/context.hpp"
#include "core/machine.hpp"
#include "net/fault_injector.hpp"
#include "net/network.hpp"
#include "net/reliable_link.hpp"
#include "sim/engine.hpp"
#include "sim/watchdog.hpp"

namespace plus {
namespace net {
namespace {

/** Cloneable test payload carrying one word. */
struct Val final : Payload {
    explicit Val(Word v) : v(v) {}
    Word v;
    std::unique_ptr<Payload>
    clone() const override
    {
        return std::make_unique<Val>(*this);
    }
};

Packet
makePacket(NodeId src, NodeId dst, Word value)
{
    Packet p;
    p.src = src;
    p.dst = dst;
    p.payloadBytes = 8;
    p.payload = std::make_unique<Val>(value);
    return p;
}

/** A 2x2 mesh with faults armed and per-node delivery recording. */
class Harness
{
  public:
    explicit Harness(sim::EngineImpl impl,
                     FaultConfig fault = FaultConfig{})
        : engine(impl), topo(4, 2, 2)
    {
        fault.enabled = true;
        cfg.fault = fault;
        network = makeNetwork(engine, topo, cfg);
        network->enableFaults(cfg.fault);
        for (NodeId n = 0; n < 4; ++n) {
            network->setDeliveryHandler(n, [this, n](Packet p) {
                auto* val = static_cast<const Val*>(p.payload.get());
                deliveredAt[n].push_back(val->v);
            });
        }
    }

    FaultInjector& injector() { return *network->faultInjector(); }
    LinkLayer& link() { return *network->linkLayer(); }

    sim::Engine engine;
    Topology topo;
    NetworkConfig cfg;
    std::unique_ptr<Network> network;
    std::vector<Word> deliveredAt[4];
};

class ReliableLink : public ::testing::TestWithParam<sim::EngineImpl>
{
};

TEST_P(ReliableLink, DroppedFrameIsRetransmittedAndDeliveredOnce)
{
    Harness h(GetParam());
    unsigned dataFrames = 0;
    h.injector().setFateOverride(
        [&](const Packet& p) -> std::optional<Fate> {
            if (p.linkCtl == kLinkData && ++dataFrames == 1) {
                return Fate::Drop;
            }
            return Fate::Deliver;
        });
    h.network->send(makePacket(0, 1, 42));
    h.engine.run();

    EXPECT_EQ(h.deliveredAt[1], std::vector<Word>{42});
    EXPECT_GE(h.link().stats().retransmits, 1u);
    EXPECT_EQ(h.link().inFlight(), 0u);
    EXPECT_EQ(h.network->stats().packets, 1u);
    EXPECT_EQ(h.network->stats().dropped, 1u);
}

TEST_P(ReliableLink, DuplicatedFramesAreSuppressed)
{
    Harness h(GetParam());
    h.injector().setFateOverride(
        [](const Packet& p) -> std::optional<Fate> {
            return p.linkCtl == kLinkData ? Fate::Duplicate
                                          : Fate::Deliver;
        });
    h.network->send(makePacket(0, 1, 1));
    h.network->send(makePacket(0, 1, 2));
    h.network->send(makePacket(0, 1, 3));
    h.engine.run();

    EXPECT_EQ(h.deliveredAt[1], (std::vector<Word>{1, 2, 3}));
    EXPECT_EQ(h.link().stats().dupSuppressed, 3u);
    EXPECT_EQ(h.link().inFlight(), 0u);
    EXPECT_EQ(h.network->stats().packets, 3u);
}

TEST_P(ReliableLink, CorruptedFrameIsDroppedAndRecovered)
{
    Harness h(GetParam());
    unsigned dataFrames = 0;
    h.injector().setFateOverride(
        [&](const Packet& p) -> std::optional<Fate> {
            if (p.linkCtl == kLinkData && ++dataFrames == 1) {
                return Fate::Corrupt;
            }
            return Fate::Deliver;
        });
    h.network->send(makePacket(0, 1, 7));
    h.engine.run();

    EXPECT_EQ(h.deliveredAt[1], std::vector<Word>{7});
    EXPECT_EQ(h.link().stats().crcDrops, 1u);
    EXPECT_GE(h.link().stats().retransmits, 1u);
    EXPECT_EQ(h.network->stats().packets, 1u);
}

TEST_P(ReliableLink, GapIsHeldInReorderBufferUntilRetransmitFills)
{
    Harness h(GetParam());
    unsigned dataFrames = 0;
    // Losing frame 1 makes frame 2 arrive first: it must wait in the
    // reorder buffer so the handler still sees the original order.
    h.injector().setFateOverride(
        [&](const Packet& p) -> std::optional<Fate> {
            if (p.linkCtl == kLinkData && ++dataFrames == 1) {
                return Fate::Drop;
            }
            return Fate::Deliver;
        });
    h.network->send(makePacket(0, 1, 10));
    h.network->send(makePacket(0, 1, 20));
    h.engine.run();

    EXPECT_EQ(h.deliveredAt[1], (std::vector<Word>{10, 20}));
    EXPECT_EQ(h.link().stats().reordered, 1u);
    EXPECT_EQ(h.link().inFlight(), 0u);
}

TEST_P(ReliableLink, LostAckIsRepairedByDupSuppressReAck)
{
    Harness h(GetParam());
    unsigned acks = 0;
    h.injector().setFateOverride(
        [&](const Packet& p) -> std::optional<Fate> {
            if (p.linkCtl == kLinkAck && ++acks == 1) {
                return Fate::Drop;
            }
            return Fate::Deliver;
        });
    h.network->send(makePacket(0, 1, 5));
    h.engine.run();

    // Delivered exactly once despite the retransmit the lost ack forced.
    EXPECT_EQ(h.deliveredAt[1], std::vector<Word>{5});
    EXPECT_GE(h.link().stats().retransmits, 1u);
    EXPECT_EQ(h.link().stats().dupSuppressed, 1u);
    EXPECT_EQ(h.link().inFlight(), 0u);
}

TEST_P(ReliableLink, DelayedFrameStillArrivesExactlyOnce)
{
    FaultConfig fault;
    fault.maxDelayCycles = 500;
    Harness h(GetParam(), fault);
    unsigned dataFrames = 0;
    h.injector().setFateOverride(
        [&](const Packet& p) -> std::optional<Fate> {
            if (p.linkCtl == kLinkData && ++dataFrames == 1) {
                return Fate::Delay;
            }
            return Fate::Deliver;
        });
    h.network->send(makePacket(0, 1, 11));
    h.network->send(makePacket(0, 1, 22));
    h.engine.run();

    EXPECT_EQ(h.deliveredAt[1], (std::vector<Word>{11, 22}));
    EXPECT_EQ(h.injector().stats().delayed, 1u);
    EXPECT_EQ(h.link().inFlight(), 0u);
}

TEST_P(ReliableLink, ScriptedLinkKillRecoversAfterRevive)
{
    FaultConfig fault;
    fault.maxRetransmits = 0; // retry forever; revive will repair it
    fault.script.push_back({100, FaultScriptEntry::Kind::LinkDown, 0, 1});
    fault.script.push_back({8000, FaultScriptEntry::Kind::LinkUp, 0, 1});
    Harness h(GetParam(), fault);
    h.engine.schedule(200, [&h] { h.network->send(makePacket(0, 1, 9)); });
    h.engine.run();

    EXPECT_EQ(h.deliveredAt[1], std::vector<Word>{9});
    EXPECT_GE(h.link().stats().retransmits, 1u);
    EXPECT_GE(h.injector().stats().linkKills, 1u);
    EXPECT_GE(h.engine.now(), Cycles{8000});
}

TEST_P(ReliableLink, RetransmitBudgetExhaustionPanicsWithDiagnostics)
{
    FaultConfig fault;
    fault.maxRetransmits = 2;
    Harness h(GetParam(), fault);
    h.network->setTraceDumper([] { return std::string("\nTRACE-MARK"); });
    h.injector().setLinkAlive(0, 1, false);
    h.network->send(makePacket(0, 1, 1));
    try {
        h.engine.run();
        FAIL() << "expected a PanicError";
    } catch (const PanicError& e) {
        // The diagnosis must name the channel, the frame, the exhausted
        // budget and the suspected cause, and carry the trace dump —
        // it is the only artifact a hung chaos run leaves behind.
        const std::string what = e.what();
        EXPECT_NE(what.find("reliable link 0 -> 1"), std::string::npos)
            << what;
        EXPECT_NE(what.find("gave up on frame 1"), std::string::npos)
            << what;
        EXPECT_NE(what.find("after 2 retransmits"), std::string::npos)
            << what;
        EXPECT_NE(what.find("permanent partition"), std::string::npos)
            << what;
        EXPECT_NE(what.find("TRACE-MARK"), std::string::npos) << what;
    }
    EXPECT_EQ(h.link().stats().retransmits, 2u);
}

TEST_P(ReliableLink, RecoveryArmedStillPanicsOnGenuinePartition)
{
    // FaultConfig::recover only converts budget exhaustion against a
    // *crashed* peer into a peer-death signal; a partition toward a
    // live node must keep its panic diagnosis.
    FaultConfig fault;
    fault.maxRetransmits = 2;
    fault.recover = true;
    Harness h(GetParam(), fault);
    unsigned deaths = 0;
    h.link().setPeerDeathHandler([&deaths](NodeId) { ++deaths; });
    h.injector().setLinkAlive(0, 1, false);
    h.network->send(makePacket(0, 1, 1));
    try {
        h.engine.run();
        FAIL() << "expected a PanicError";
    } catch (const PanicError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("gave up"), std::string::npos) << what;
    }
    EXPECT_EQ(deaths, 0u);
    EXPECT_EQ(h.link().stats().peerDeaths, 0u);
}

TEST_P(ReliableLink, DeadDestinationNodeDropsUntilRevived)
{
    FaultConfig fault;
    fault.maxRetransmits = 0;
    fault.script.push_back({1, FaultScriptEntry::Kind::NodeDown, 1});
    fault.script.push_back({6000, FaultScriptEntry::Kind::NodeUp, 1});
    Harness h(GetParam(), fault);
    h.engine.schedule(10, [&h] { h.network->send(makePacket(0, 1, 3)); });
    h.engine.run();

    EXPECT_EQ(h.deliveredAt[1], std::vector<Word>{3});
    EXPECT_GE(h.injector().stats().nodeKills, 1u);
    EXPECT_GE(h.link().stats().retransmits, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, ReliableLink,
    ::testing::Values(sim::EngineImpl::Wheel, sim::EngineImpl::Heap),
    [](const ::testing::TestParamInfo<sim::EngineImpl>& info) {
        return info.param == sim::EngineImpl::Wheel ? "wheel" : "heap";
    });

} // namespace
} // namespace net

namespace core {
namespace {

/** Scoped PLUS_ENGINE override for Machine-level tests. */
struct EngineEnv {
    explicit EngineEnv(const char* name)
    {
        setenv("PLUS_ENGINE", name, 1);
    }
    ~EngineEnv() { unsetenv("PLUS_ENGINE"); }
};

MachineConfig
faultyConfig()
{
    MachineConfig cfg;
    cfg.nodes = 4;
    cfg.network.fault.enabled = true;
    return cfg;
}

TEST(Watchdog, PermanentPartitionTripsTheWatchdog)
{
    for (const char* impl : {"wheel", "heap"}) {
        EngineEnv env(impl);
        MachineConfig cfg = faultyConfig();
        // Retry forever: the hang must be diagnosed by the watchdog,
        // not the link layer's retransmit budget.
        cfg.network.fault.maxRetransmits = 0;
        cfg.network.fault.script.push_back(
            {1, FaultScriptEntry::Kind::LinkDown, 0, 1});
        cfg.watchdog.enabled = true;
        cfg.watchdog.windowCycles = 1u << 15;
        Machine m(cfg);
        const Addr a = m.alloc(8, 0); // homed on node 0
        m.spawn(1, [&](Context& ctx) { ctx.read(a); });
        try {
            m.run();
            FAIL() << "expected the watchdog to panic (" << impl << ")";
        } catch (const PanicError& e) {
            const std::string what = e.what();
            EXPECT_NE(what.find("watchdog"), std::string::npos) << what;
            EXPECT_NE(what.find("machine diagnostics"), std::string::npos)
                << what;
        }
        ASSERT_NE(m.watchdog(), nullptr);
        EXPECT_GE(m.watchdog()->stallWindows(), 1u);
    }
}

TEST(Watchdog, QuietWhenWorkloadFinishes)
{
    MachineConfig cfg;
    cfg.nodes = 4;
    cfg.watchdog.enabled = true;
    cfg.watchdog.windowCycles = 256; // far shorter than the run
    Machine m(cfg);
    const Addr a = m.alloc(8, 0);
    Word seen = 0;
    m.spawn(1, [&](Context& ctx) {
        for (int i = 0; i < 100; ++i) {
            ctx.fadd(a, 1);
        }
        seen = ctx.read(a);
    });
    m.run();
    EXPECT_EQ(seen, 100u);
    EXPECT_EQ(m.watchdog()->stallWindows(), 0u);
    EXPECT_FALSE(m.watchdog()->armed());
}

TEST(MachineFaults, ChaosSmokeFinalMemoryMatchesFaultFree)
{
    // Disjoint per-node counters: the final image is independent of
    // timing, so any lost / duplicated / misordered protocol message
    // shows up as a wrong count.
    constexpr int kIncrements = 40;
    for (const char* impl : {"wheel", "heap"}) {
        EngineEnv env(impl);
        MachineConfig cfg = faultyConfig();
        cfg.network.fault.seed = 1234;
        cfg.network.fault.dropRate = 0.02;
        cfg.network.fault.duplicateRate = 0.02;
        cfg.network.fault.corruptRate = 0.01;
        cfg.watchdog.enabled = true;
        Machine m(cfg);
        const Addr base = m.alloc(8 * 4, 0);
        for (NodeId n = 0; n < 4; ++n) {
            m.spawn(n, [&, n](Context& ctx) {
                for (int i = 0; i < kIncrements; ++i) {
                    ctx.fadd(base + 8 * n, 1);
                }
                ctx.fence();
            });
        }
        m.run();
        m.settle();
        for (NodeId n = 0; n < 4; ++n) {
            EXPECT_EQ(m.peek(base + 8 * n),
                      static_cast<Word>(kIncrements))
                << "node " << n << " under " << impl;
        }
        const net::FaultStats& f =
            m.network().faultInjector()->stats();
        EXPECT_GT(f.dropped + f.corrupted + f.duplicated, 0u)
            << "chaos run injected no faults — rates too low?";
    }
}

TEST(MachineFaults, FaultMetricsAreRegistered)
{
    MachineConfig cfg = faultyConfig();
    cfg.network.fault.dropRate = 0.05;
    Machine m(cfg);
    const Addr a = m.alloc(8, 0);
    m.spawn(1, [&](Context& ctx) { ctx.fadd(a, 1); });
    m.run();
    m.settle();

    const auto snap = m.metricsSnapshot();
    bool sawRetries = false;
    bool sawLink = false;
    for (const auto& [name, value] : snap.counters) {
        (void)value;
        if (name == "proto.nack_retries") {
            sawRetries = true;
        }
        if (name == "net.link.retransmits") {
            sawLink = true;
        }
    }
    EXPECT_TRUE(sawRetries);
    EXPECT_TRUE(sawLink);
}

} // namespace
} // namespace core
} // namespace plus
