/**
 * @file
 * Tests of the synthetic traffic patterns: they must complete, keep
 * their invariants (producer/consumer data integrity), and stress what
 * they claim to stress (hotspot concentrates traffic; update flooding
 * multiplies update messages with replication).
 */

#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "workloads/synthetic.hpp"

namespace plus {
namespace workloads {
namespace {

MachineConfig
cfgFor(unsigned nodes, bool ideal = false)
{
    MachineConfig cfg;
    cfg.nodes = nodes;
    cfg.framesPerNode = 64;
    cfg.network.ideal = ideal;
    return cfg;
}

TEST(Synthetic, UniformCompletes)
{
    core::Machine m(cfgFor(8));
    SyntheticConfig cfg;
    cfg.pattern = SyntheticPattern::Uniform;
    cfg.opsPerNode = 100;
    const SyntheticResult r = runSynthetic(m, cfg);
    EXPECT_TRUE(r.correct);
    EXPECT_GT(r.elapsed, 0u);
    EXPECT_GT(r.report.localReads + r.report.remoteReads, 0u);
}

TEST(Synthetic, HotspotConcentratesTrafficAtHotNode)
{
    core::Machine m(cfgFor(8));
    SyntheticConfig cfg;
    cfg.pattern = SyntheticPattern::Hotspot;
    cfg.hotNode = 3;
    cfg.opsPerNode = 100;
    runSynthetic(m, cfg);
    // The hot node's manager must be far busier than any other.
    const Cycles hot = m.nodeAt(3).cm().stats().busyCycles;
    for (NodeId n = 0; n < 8; ++n) {
        if (n != 3) {
            EXPECT_GT(hot, m.nodeAt(n).cm().stats().busyCycles);
        }
    }
}

TEST(Synthetic, UpdateFloodScalesUpdatesWithReplication)
{
    SyntheticConfig cfg;
    cfg.pattern = SyntheticPattern::UpdateFlood;
    cfg.opsPerNode = 100;

    core::Machine m1(cfgFor(8));
    cfg.replication = 1;
    const SyntheticResult r1 = runSynthetic(m1, cfg);

    core::Machine m4(cfgFor(8));
    cfg.replication = 4;
    const SyntheticResult r4 = runSynthetic(m4, cfg);

    EXPECT_EQ(r1.report.updateMessages, 0u);
    EXPECT_GT(r4.report.updateMessages,
              300u); // ~3 updates per write, 800 writes
    EXPECT_GT(r4.elapsed, r1.elapsed);
}

TEST(Synthetic, ProducerConsumerIntegrity)
{
    core::Machine m(cfgFor(6));
    SyntheticConfig cfg;
    cfg.pattern = SyntheticPattern::ProducerConsumer;
    cfg.opsPerNode = 25; // batches per pair
    const SyntheticResult r = runSynthetic(m, cfg);
    EXPECT_TRUE(r.correct);
}

TEST(Synthetic, ProducerConsumerOnTwoNodes)
{
    core::Machine m(cfgFor(2));
    SyntheticConfig cfg;
    cfg.pattern = SyntheticPattern::ProducerConsumer;
    cfg.opsPerNode = 10;
    EXPECT_TRUE(runSynthetic(m, cfg).correct);
}

TEST(Synthetic, MeshShowsMoreQueueingThanIdeal)
{
    SyntheticConfig cfg;
    cfg.pattern = SyntheticPattern::UpdateFlood;
    cfg.opsPerNode = 150;
    cfg.replication = 8;

    core::Machine mesh(cfgFor(8, /*ideal=*/false));
    const SyntheticResult rm = runSynthetic(mesh, cfg);

    core::Machine ideal(cfgFor(8, /*ideal=*/true));
    const SyntheticResult ri = runSynthetic(ideal, cfg);

    EXPECT_GT(rm.meanQueueing, 0.0);
    EXPECT_EQ(ri.meanQueueing, 0.0);
    EXPECT_GE(rm.elapsed, ri.elapsed);
}

TEST(Synthetic, DeterministicAcrossRuns)
{
    SyntheticConfig cfg;
    cfg.pattern = SyntheticPattern::Uniform;
    cfg.opsPerNode = 80;
    cfg.seed = 5;
    core::Machine a(cfgFor(4));
    core::Machine b(cfgFor(4));
    EXPECT_EQ(runSynthetic(a, cfg).elapsed, runSynthetic(b, cfg).elapsed);
}

} // namespace
} // namespace workloads
} // namespace plus
