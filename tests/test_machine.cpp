/**
 * @file
 * End-to-end machine tests: allocation, coherent reads/writes across
 * nodes, interlocked operations, fences, and the pending-writes rules of
 * Section 2.3.
 */

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "core/context.hpp"
#include "core/machine.hpp"

namespace plus {
namespace core {
namespace {

MachineConfig
smallConfig(unsigned nodes)
{
    MachineConfig cfg;
    cfg.nodes = nodes;
    cfg.framesPerNode = 64;
    return cfg;
}

TEST(Machine, AllocAndBackdoors)
{
    Machine m(smallConfig(4));
    const Addr a = m.alloc(kPageBytes, 2);
    EXPECT_EQ(m.peek(a), 0u);
    m.poke(a + 8, 1234);
    EXPECT_EQ(m.peek(a + 8), 1234u);
    EXPECT_EQ(m.copyListOf(a).master().node, 2u);
    EXPECT_EQ(m.copyListOf(a).size(), 1u);
}

TEST(Machine, AllocRoundsUpToPages)
{
    Machine m(smallConfig(2));
    const Addr a = m.alloc(kPageBytes * 2 + 1, 0);
    // Three consecutive pages, all addressable.
    m.poke(a, 1);
    m.poke(a + kPageBytes, 2);
    m.poke(a + 2 * kPageBytes, 3);
    EXPECT_EQ(m.peek(a + 2 * kPageBytes), 3u);
}

TEST(Machine, LocalReadAndWrite)
{
    Machine m(smallConfig(2));
    const Addr a = m.alloc(kPageBytes, 0);
    Word seen = ~0u;
    m.spawn(0, [&](Context& ctx) {
        ctx.write(a, 77);
        seen = ctx.read(a);
    });
    m.run();
    EXPECT_EQ(seen, 77u);
    EXPECT_EQ(m.peek(a), 77u);
}

TEST(Machine, RemoteReadSeesRemoteData)
{
    Machine m(smallConfig(4));
    const Addr a = m.alloc(kPageBytes, 3);
    m.poke(a, 555);
    Word seen = 0;
    m.spawn(0, [&](Context& ctx) { seen = ctx.read(a); });
    m.run();
    EXPECT_EQ(seen, 555u);
}

TEST(Machine, RemoteWriteReachesMaster)
{
    Machine m(smallConfig(4));
    const Addr a = m.alloc(kPageBytes, 3);
    m.spawn(0, [&](Context& ctx) {
        ctx.write(a, 99);
        ctx.fence();
    });
    m.run();
    EXPECT_EQ(m.peek(a), 99u);
}

TEST(Machine, ReadAfterWriteSameProcessorIsStronglyOrdered)
{
    // "Reading a location that is currently being written blocks until
    // the write completes": a read after a remote write must observe it.
    Machine m(smallConfig(4));
    const Addr a = m.alloc(kPageBytes, 2);
    Word seen = 0;
    m.spawn(0, [&](Context& ctx) {
        ctx.write(a, 1);
        ctx.write(a, 2);
        ctx.write(a, 3);
        seen = ctx.read(a);
    });
    m.run();
    EXPECT_EQ(seen, 3u);
}

TEST(Machine, FadAddAccumulatesAcrossNodes)
{
    Machine m(smallConfig(4));
    const Addr a = m.alloc(kPageBytes, 0);
    for (NodeId n = 0; n < 4; ++n) {
        m.spawn(n, [&](Context& ctx) {
            for (int i = 0; i < 10; ++i) {
                ctx.fadd(a, 1);
            }
        });
    }
    m.run();
    EXPECT_EQ(m.peek(a), 40u);
}

TEST(Machine, FetchAddReturnsOldValue)
{
    Machine m(smallConfig(2));
    const Addr a = m.alloc(kPageBytes, 1);
    m.poke(a, 5);
    Word old = 0;
    m.spawn(0, [&](Context& ctx) { old = ctx.fadd(a, 3); });
    m.run();
    EXPECT_EQ(old, 5u);
    EXPECT_EQ(m.peek(a), 8u);
}

TEST(Machine, XchngSwapsAndReturnsOld)
{
    Machine m(smallConfig(2));
    const Addr a = m.alloc(kPageBytes, 1);
    m.poke(a, 10);
    Word old = 0;
    m.spawn(0, [&](Context& ctx) { old = ctx.xchng(a, 20); });
    m.run();
    EXPECT_EQ(old, 10u);
    EXPECT_EQ(m.peek(a), 20u);
}

TEST(Machine, MinXchngKeepsMinimum)
{
    Machine m(smallConfig(2));
    const Addr a = m.alloc(kPageBytes, 1);
    m.poke(a, 100);
    m.spawn(0, [&](Context& ctx) {
        ctx.minXchng(a, 150); // larger: no change
        ctx.minXchng(a, 40);  // smaller: stored
    });
    m.run();
    EXPECT_EQ(m.peek(a), 40u);
}

TEST(Machine, DelayedIssueVerifyOverlapsComputation)
{
    Machine m(smallConfig(4));
    const Addr a = m.alloc(kPageBytes, 3);
    m.poke(a, 7);
    Word result = 0;
    m.spawn(0, [&](Context& ctx) {
        OpHandle h = ctx.issueFadd(a, 1);
        ctx.compute(500); // overlap with the operation's round trip
        result = ctx.verify(h);
    });
    m.run();
    EXPECT_EQ(result, 7u);
    EXPECT_EQ(m.peek(a), 8u);
}

TEST(Machine, EightDelayedOpsInFlight)
{
    Machine m(smallConfig(4));
    const Addr a = m.alloc(kPageBytes, 3);
    std::vector<Word> results;
    m.spawn(0, [&](Context& ctx) {
        std::vector<OpHandle> handles;
        for (int i = 0; i < 8; ++i) {
            handles.push_back(ctx.issueFadd(a, 1));
        }
        for (OpHandle h : handles) {
            results.push_back(ctx.verify(h));
        }
    });
    m.run();
    // fadds execute at the master in issue order.
    ASSERT_EQ(results.size(), 8u);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(results[i], static_cast<Word>(i));
    }
    EXPECT_EQ(m.peek(a), 8u);
}

TEST(Machine, NinthIssueWithAllResultsUnreadDeadlocks)
{
    // Slots in the delayed-operations cache are deallocated only when
    // the processor *reads* the result (Section 3.1), so issuing a ninth
    // operation while holding eight unread results can never make
    // progress — and the machine reports the deadlock.
    Machine m(smallConfig(4));
    const Addr a = m.alloc(kPageBytes, 3);
    m.spawn(0, [&](Context& ctx) {
        std::vector<OpHandle> handles;
        for (int i = 0; i < 9; ++i) {
            handles.push_back(ctx.issueFadd(a, 1));
        }
        for (OpHandle h : handles) {
            ctx.verify(h);
        }
    });
    EXPECT_THROW(m.run(), FatalError);
}

TEST(Machine, SlidingWindowOfDelayedOpsReusesSlots)
{
    // Keeping at most 8 operations outstanding lets an arbitrarily long
    // stream of delayed operations flow.
    Machine m(smallConfig(4));
    const Addr a = m.alloc(kPageBytes, 3);
    m.spawn(0, [&](Context& ctx) {
        std::deque<OpHandle> window;
        for (int i = 0; i < 100; ++i) {
            if (window.size() == 8) {
                ctx.verify(window.front());
                window.pop_front();
            }
            window.push_back(ctx.issueFadd(a, 1));
        }
        while (!window.empty()) {
            ctx.verify(window.front());
            window.pop_front();
        }
    });
    m.run();
    EXPECT_EQ(m.peek(a), 100u);
    EXPECT_EQ(m.nodeAt(0).cm().delayedOps().maxInFlight(), 8u);
}

TEST(Machine, FenceDrainsPendingWrites)
{
    Machine m(smallConfig(4));
    const Addr a = m.alloc(kPageBytes, 2);
    m.spawn(0, [&](Context& ctx) {
        for (Word i = 0; i < 20; ++i) {
            ctx.write(a + 4 * i, i + 1);
        }
        ctx.fence();
        // After the fence every write must be globally complete.
        for (Word i = 0; i < 20; ++i) {
            EXPECT_EQ(ctx.machine().peek(a + 4 * i), i + 1);
        }
    });
    m.run();
}

TEST(Machine, WriteBurstRespectsPendingCapacity)
{
    Machine m(smallConfig(4));
    const Addr a = m.alloc(kPageBytes, 2);
    m.spawn(0, [&](Context& ctx) {
        for (Word i = 0; i < 64; ++i) {
            ctx.write(a + 4 * (i % 16), i);
        }
        ctx.fence();
    });
    m.run();
    EXPECT_LE(m.nodeAt(0).cm().pendingWrites().maxInFlight(), 8u);
    EXPECT_GT(m.nodeAt(0).processor().stats()
                  .stall[static_cast<unsigned>(
                      node::StallKind::PendingFull)],
              0u);
}

TEST(Machine, ProducerConsumerWithFenceAndFlag)
{
    // The weak-ordering example of Section 2.1: data + flag in different
    // pages; the producer fences before setting the flag, so the
    // consumer never sees the flag without the data.
    Machine m(smallConfig(4));
    const Addr data = m.alloc(kPageBytes, 1);
    const Addr flag = m.alloc(kPageBytes, 2);
    Word seen = 0;
    m.spawn(0, [&](Context& ctx) {
        for (Word i = 0; i < 8; ++i) {
            ctx.write(data + 4 * i, 100 + i);
        }
        ctx.fence();
        ctx.write(flag, 1);
    });
    m.spawn(3, [&](Context& ctx) {
        while (ctx.read(flag) == 0) {
            ctx.compute(10);
        }
        seen = ctx.read(data + 4 * 7);
    });
    m.run();
    EXPECT_EQ(seen, 107u);
}

TEST(Machine, ComputeAdvancesTime)
{
    Machine m(smallConfig(1));
    m.spawn(0, [&](Context& ctx) { ctx.compute(12345); });
    m.run();
    EXPECT_GE(m.now(), 12345u);
    EXPECT_EQ(m.nodeAt(0).processor().stats().compute, 12345u);
}

TEST(Machine, RemoteReadCostMatchesPaperFormula)
{
    // Cost of a remote blocking read: about 32 cycles plus the
    // round-trip network delay (24 cycles adjacent).
    MachineConfig cfg = smallConfig(2);
    cfg.network.meshWidth = 2;
    Machine m(cfg);
    const Addr a = m.alloc(kPageBytes, 1);
    // Warm the page table so the fault cost is excluded.
    Cycles before = 0;
    Cycles after = 0;
    m.spawn(0, [&](Context& ctx) {
        ctx.read(a); // first read pays the page-table fill
        before = ctx.machine().now();
        ctx.read(a);
        after = ctx.machine().now();
    });
    m.run();
    EXPECT_EQ(after - before, 32u + 24u);
}

TEST(Machine, ReportAccountsProcessorTime)
{
    Machine m(smallConfig(4));
    const Addr a = m.alloc(kPageBytes, 1);
    for (NodeId n = 0; n < 4; ++n) {
        m.spawn(n, [&](Context& ctx) {
            ctx.compute(100);
            ctx.fadd(a, 1);
        });
    }
    m.run();
    const MachineReport r = m.report();
    EXPECT_EQ(r.localRmws + r.remoteRmws, 4u);
    EXPECT_GE(r.busyUseful, 400u);
    EXPECT_GT(r.elapsed, 0u);
    EXPECT_GT(r.utilization(4), 0.0);
    EXPECT_LE(r.utilization(4), 1.0);
}

TEST(Machine, DeadlockIsReported)
{
    Machine m(smallConfig(2));
    const Addr a = m.alloc(kPageBytes, 0);
    (void)a;
    m.spawn(0, [&](Context& ctx) {
        // Wait for a flag nobody ever sets, with a spin that stops
        // generating events is impossible — so use the cycle cap.
        while (ctx.read(a) == 0) {
            ctx.compute(1000);
        }
    });
    EXPECT_THROW(m.run(2'000'000), FatalError);
}

TEST(Machine, ThreadsOnAllNodesOfOddMesh)
{
    // 7 nodes on a 3x3 mesh with a partial last row.
    Machine m(smallConfig(7));
    const Addr a = m.alloc(kPageBytes, 6);
    for (NodeId n = 0; n < 7; ++n) {
        m.spawn(n, [&](Context& ctx) { ctx.fadd(a, 1); });
    }
    m.run();
    EXPECT_EQ(m.peek(a), 7u);
}

TEST(Machine, ReadyPollIsNonBlocking)
{
    // "Since the software can inspect the status of these locations, it
    // is also possible to implement a non-blocking read" (Section 3.1).
    Machine m(smallConfig(4));
    const Addr a = m.alloc(kPageBytes, 3);
    unsigned polls = 0;
    m.spawn(0, [&](Context& ctx) {
        ctx.read(a); // warm translation
        OpHandle h = ctx.issueFadd(a, 1);
        while (!ctx.ready(h)) {
            ++polls;
            ctx.compute(10);
        }
        EXPECT_EQ(ctx.verify(h), 0u);
    });
    m.run();
    EXPECT_GT(polls, 0u); // the result took a round trip to arrive
    EXPECT_EQ(m.peek(a), 1u);
}

} // namespace
} // namespace core
} // namespace plus
