/**
 * @file
 * Fail-stop crash recovery: a scripted CrashNode entry silences a node
 * mid-run, peer-death detection (retransmit-budget exhaustion against a
 * crashed destination) triggers the recovery manager, and the machine
 * must finish the workload without a watchdog panic — dead node purged
 * from every copy-list, masters re-homed onto survivors, survivor
 * copies byte-identical, in-flight operations replayed, and pages whose
 * only copy died served degraded (bounded PageLost completion with
 * kPageLostValue). The whole recovery epoch is deterministic: the
 * post-recovery image and statistics must be byte-identical across the
 * wheel, heap, and parallel engine backends.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/checker.hpp"
#include "check/invariant_checker.hpp"
#include "common/config.hpp"
#include "common/panic.hpp"
#include "core/context.hpp"
#include "core/machine.hpp"
#include "mem/copy_list.hpp"
#include "mem/local_memory.hpp"
#include "net/fault_injector.hpp"
#include "net/network.hpp"
#include "net/reliable_link.hpp"
#include "node/node.hpp"
#include "node/processor.hpp"
#include "proto/recovery_manager.hpp"
#include "sim/watchdog.hpp"

namespace plus {
namespace core {
namespace {

constexpr NodeId kDoomed = 3;
// Script cycles count from run() (setup/settle time is excluded); the
// writers span ~30k cycles, so 8k lands the crash mid-workload with
// writes in flight on every survivor. If timing-model changes move the
// workload off this window, the prober assert below fails loudly (it
// never sees the lost page) — the test cannot silently degrade into a
// post-run crash.
constexpr Cycles kCrashCycle = 8000;
constexpr Word kIters = 80;

/**
 * Four nodes in a 1x4 line so the crashed node (the end of the line)
 * is never an intermediate router for survivor traffic — dimension-
 * order routing cannot route around a dead router, so recovery tests
 * must crash topological corner nodes.
 */
MachineConfig
recoveryConfig(SimEngine backend = SimEngine::Wheel, unsigned threads = 0)
{
    MachineConfig cfg;
    cfg.nodes = 4;
    cfg.engine = backend;
    cfg.simThreads = threads;
    cfg.network.meshWidth = 4;
    cfg.network.fault.enabled = true;
    cfg.network.fault.recover = true;
    cfg.network.fault.maxRetransmits = 4;
    cfg.network.fault.script.push_back(
        {kCrashCycle, FaultScriptEntry::Kind::CrashNode, kDoomed});
    cfg.watchdog.enabled = true;
    cfg.watchdog.windowCycles = 1u << 15;
    return cfg;
}

struct Outcome {
    Cycles elapsed = 0;
    Addr shared = 0;
    std::vector<Word> image;
    Word soloSeen = 0;
    proto::RecoveryStats rec;
    std::uint64_t executed = 0;
};

/**
 * The shared page is mastered on the doomed node and replicated onto
 * nodes 0 and 1; `solo` stays unreplicated on the doomed node, so the
 * crash makes it a lost page. Each writer owns one word (a replayed
 * write is idempotent under single-writer words, so the final image is
 * exact despite at-least-once replay).
 */
Outcome
runCrashScenario(Machine& m)
{
    const Addr shared = m.alloc(kPageBytes, kDoomed);
    m.replicate(shared, 0);
    m.replicate(shared, 1);
    const Addr solo = m.alloc(kPageBytes, kDoomed);
    m.settle();

    Outcome out;
    // Node 0 doubles as the lost-page prober: it polls `solo` while it
    // writes, so a probe is in flight when the master dies (completed
    // as lost by the recovery walk) and later probes fault degraded at
    // translation time.
    m.spawn(0, [&out, shared, solo](Context& ctx) {
        for (Word i = 1; i <= kIters; ++i) {
            ctx.write(shared + 4 * 0, i);
            ctx.read(shared + 4 * 1);
            if (out.soloSeen != kPageLostValue) {
                out.soloSeen = ctx.read(solo);
            }
            ctx.compute(20);
        }
        for (int i = 0; i < 4000 && out.soloSeen != kPageLostValue; ++i) {
            out.soloSeen = ctx.read(solo);
        }
        // The loss has been observed (possibly via an in-flight read the
        // recovery walk completed as lost); one more round trip must now
        // fault degraded at translation time (proc.pageLostFaults) and
        // still complete in bounded cycles, for reads and writes both.
        out.soloSeen = ctx.read(solo);
        ctx.write(solo, 1);
    });
    for (NodeId n = 1; n < 3; ++n) {
        m.spawn(n, [shared, n](Context& ctx) {
            for (Word i = 1; i <= kIters; ++i) {
                ctx.write(shared + 4 * n, n * 1000 + i);
                ctx.read(shared + 4 * ((n + 1) % 3));
                ctx.compute(20);
            }
        });
    }
    // The doomed node's writer would run far past the whole test; the
    // crash must write it off (halted processor, thread never finishes).
    m.spawn(kDoomed, [shared](Context& ctx) {
        for (Word i = 1; i <= 100000; ++i) {
            ctx.write(shared + 4 * kDoomed, 3000 + i);
            ctx.compute(10);
        }
    });
    m.run();
    m.settle();

    out.shared = shared;
    out.elapsed = m.now();
    for (Word w = 0; w < 8; ++w) {
        out.image.push_back(m.peek(shared + 4 * w));
    }
    out.image.push_back(out.soloSeen);
    out.rec = m.recovery()->stats();
    out.executed = m.engine().executedEvents();
    return out;
}

TEST(Recovery, MasterCrashRecoversAndServesDegraded)
{
    MachineConfig cfg = recoveryConfig();
    Machine m(cfg);
    const Outcome out = runCrashScenario(m);

    // Survivors finished their writes; single-writer words are exact.
    for (NodeId n = 0; n < 3; ++n) {
        EXPECT_EQ(out.image[n], n * 1000 + kIters) << "writer " << n;
    }
    // The lost page completed degraded, within the probe bound.
    EXPECT_EQ(out.soloSeen, kPageLostValue);

    ASSERT_NE(m.recovery(), nullptr);
    EXPECT_TRUE(m.recovery()->nodeCrashed(kDoomed));
    EXPECT_TRUE(m.recovery()->nodeRecovered(kDoomed));
    EXPECT_EQ(out.rec.nodeRecoveries, 1u);
    EXPECT_GE(out.rec.pagesRemastered, 1u);
    EXPECT_GE(out.rec.pagesLost, 1u);

    // No stall window: recovery must beat the watchdog.
    ASSERT_NE(m.watchdog(), nullptr);
    EXPECT_EQ(m.watchdog()->stallWindows(), 0u);

    // The protocol drained: every write chain retired or was aborted.
    ASSERT_NE(m.checker(), nullptr);
    ASSERT_NE(m.checker()->invariants(), nullptr);
    EXPECT_EQ(m.checker()->invariants()->writesInFlight(), 0u);
}

TEST(Recovery, DeadNodePurgedFromCopyListAndSurvivorsConsistent)
{
    MachineConfig cfg = recoveryConfig();
    Machine m(cfg);
    const Outcome out = runCrashScenario(m);

    const mem::CopyList& list = m.copyListOf(out.shared);
    ASSERT_GE(list.copies().size(), 2u);
    for (const PhysPage& copy : list.copies()) {
        EXPECT_NE(copy.node, kDoomed) << "dead node still in copy-list";
    }
    // Every survivor copy is byte-identical to the new master: the
    // recovery re-sync repaired any suffix the mid-chain crash left
    // stale.
    const PhysPage master = list.copies().front();
    const mem::LocalMemory& mm = m.nodeAt(master.node).memory();
    for (std::size_t c = 1; c < list.copies().size(); ++c) {
        const PhysPage copy = list.copies()[c];
        const mem::LocalMemory& cm = m.nodeAt(copy.node).memory();
        for (Addr w = 0; w < kPageWords; ++w) {
            ASSERT_EQ(cm.read(copy.frame, w), mm.read(master.frame, w))
                << "copy on node " << copy.node << " diverges at word "
                << w;
        }
    }
}

TEST(Recovery, MetricsAndPanicSummaryExposeTheEpoch)
{
    MachineConfig cfg = recoveryConfig();
    Machine m(cfg);
    runCrashScenario(m);

    std::uint64_t epochs = 0;
    std::uint64_t lostFaults = 0;
    std::uint64_t peerDeaths = 0;
    std::uint64_t crashes = 0;
    for (const auto& [name, value] : m.metricsSnapshot().counters) {
        if (name == "recovery.epochs") {
            epochs = value;
        } else if (name == "proc.pageLostFaults") {
            lostFaults = value;
        } else if (name == "net.link.peerDeaths") {
            peerDeaths = value;
        } else if (name == "net.fault.nodeCrashes") {
            crashes = value;
        }
    }
    EXPECT_EQ(epochs, 1u);
    EXPECT_GT(lostFaults, 0u);
    EXPECT_GT(peerDeaths, 0u);
    EXPECT_EQ(crashes, 1u);

    // The panic decorator's dossier (appended to PLUS_PANIC output and
    // the machine diagnostics dump) names the epoch and the dead node.
    const std::string summary = m.recovery()->panicSummary();
    EXPECT_NE(summary.find("crash recovery"), std::string::npos) << summary;
    EXPECT_NE(summary.find("recovered"), std::string::npos) << summary;
}

TEST(Recovery, PostRecoveryImageIsByteIdenticalAcrossBackends)
{
    auto runOn = [](SimEngine backend, unsigned threads) {
        MachineConfig cfg = recoveryConfig(backend, threads);
        Machine m(cfg);
        return runCrashScenario(m);
    };
    const Outcome wheel = runOn(SimEngine::Wheel, 0);
    ASSERT_FALSE(wheel.image.empty());

    auto expectIdentical = [&wheel](const Outcome& got, const char* label) {
        EXPECT_EQ(wheel.elapsed, got.elapsed) << label;
        EXPECT_EQ(wheel.image, got.image) << label;
        EXPECT_EQ(wheel.executed, got.executed) << label;
        EXPECT_EQ(wheel.rec.nodeRecoveries, got.rec.nodeRecoveries) << label;
        EXPECT_EQ(wheel.rec.pagesRemastered, got.rec.pagesRemastered)
            << label;
        EXPECT_EQ(wheel.rec.copyListsRepaired, got.rec.copyListsRepaired)
            << label;
        EXPECT_EQ(wheel.rec.pagesLost, got.rec.pagesLost) << label;
        EXPECT_EQ(wheel.rec.abortedOps, got.rec.abortedOps) << label;
        EXPECT_EQ(wheel.rec.lostCompletions, got.rec.lostCompletions)
            << label;
    };
    expectIdentical(runOn(SimEngine::Heap, 0), "heap");
    expectIdentical(runOn(SimEngine::Parallel, 2), "parallel t=2");
    expectIdentical(runOn(SimEngine::Parallel, 4), "parallel t=4");
}

// --- configuration validation -------------------------------------------

TEST(RecoveryConfig, RejectsCrashOfNodeBeyondMachineSize)
{
    MachineConfig cfg;
    cfg.nodes = 4;
    cfg.network.fault.enabled = true;
    cfg.network.fault.script.push_back(
        {10, FaultScriptEntry::Kind::CrashNode, 9});
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(RecoveryConfig, RejectsCrashingEveryNode)
{
    MachineConfig cfg;
    cfg.nodes = 2;
    cfg.network.fault.enabled = true;
    cfg.network.fault.recover = true;
    cfg.network.fault.script.push_back(
        {10, FaultScriptEntry::Kind::CrashNode, 0});
    cfg.network.fault.script.push_back(
        {20, FaultScriptEntry::Kind::CrashNode, 1});
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(RecoveryConfig, RejectsUnboundedRetransmitBudgetWithRecovery)
{
    // Detection rides on retransmit-budget exhaustion: retry-forever
    // would never report the death.
    MachineConfig cfg;
    cfg.nodes = 4;
    cfg.network.fault.enabled = true;
    cfg.network.fault.recover = true;
    cfg.network.fault.maxRetransmits = 0;
    cfg.network.fault.script.push_back(
        {10, FaultScriptEntry::Kind::CrashNode, 3});
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(RecoveryConfig, RejectsCrashKillingEveryFencedReplica)
{
    MachineConfig cfg;
    cfg.nodes = 4;
    cfg.network.fault.enabled = true;
    cfg.network.fault.recover = true;
    cfg.network.fault.script.push_back(
        {10, FaultScriptEntry::Kind::CrashNode, 2});
    cfg.network.fault.script.push_back(
        {20, FaultScriptEntry::Kind::CrashNode, 3});
    cfg.network.fault.fencedPageReplicas.push_back({2, 3});
    EXPECT_THROW(cfg.validate(), FatalError);

    // One surviving holder makes the same schedule legal.
    cfg.network.fault.fencedPageReplicas.back().push_back(0);
    EXPECT_NO_THROW(cfg.validate());
}

} // namespace
} // namespace core
} // namespace plus
