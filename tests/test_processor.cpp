/**
 * @file
 * Tests of the processor timing model: cost accounting identities,
 * latency-hiding behaviour of the three modes, the cache's effect on
 * local access costs, and page-fault charging.
 */

#include <gtest/gtest.h>

#include "core/context.hpp"
#include "core/machine.hpp"

namespace plus {
namespace core {
namespace {

MachineConfig
cfgFor(unsigned nodes, ProcessorMode mode = ProcessorMode::Delayed)
{
    MachineConfig cfg;
    cfg.nodes = nodes;
    cfg.framesPerNode = 64;
    cfg.mode = mode;
    return cfg;
}

TEST(Processor, AccountingCoversElapsedTime)
{
    // busy + stalls + idle must account for (almost) the whole run on a
    // single-threaded processor; only the trailing interval after the
    // thread finishes is unattributed.
    Machine m(cfgFor(4));
    const Addr page = m.alloc(kPageBytes, 3);
    Cycles finished_at = 0;
    m.spawn(0, [&](Context& ctx) {
        ctx.compute(500);
        for (int i = 0; i < 10; ++i) {
            ctx.read(page + 4 * i);
            ctx.write(page + 4 * i, i);
        }
        ctx.fence();
        ctx.fadd(page, 1);
        finished_at = ctx.machine().now();
    });
    m.run();
    const auto& ps = m.nodeAt(0).processor().stats();
    const Cycles accounted = ps.busyUseful() + ps.ctxOverhead +
                             ps.totalStall() + ps.idle();
    EXPECT_EQ(accounted, finished_at);
}

TEST(Processor, ComputeChargesExactly)
{
    Machine m(cfgFor(1));
    m.spawn(0, [&](Context& ctx) {
        ctx.compute(123);
        ctx.compute(877);
    });
    m.run();
    EXPECT_EQ(m.nodeAt(0).processor().stats().compute, 1000u);
}

TEST(Processor, CacheHitsCheapenRepeatedLocalReads)
{
    Machine m(cfgFor(1));
    const Addr page = m.alloc(kPageBytes, 0);
    Cycles first = 0;
    Cycles second = 0;
    m.spawn(0, [&](Context& ctx) {
        Cycles t0 = ctx.machine().now();
        ctx.read(page); // page fault + cache miss
        t0 = ctx.machine().now();
        ctx.read(page + 4 * 64); // new line: miss (15 cycles)
        first = ctx.machine().now() - t0;
        t0 = ctx.machine().now();
        ctx.read(page + 4 * 64); // same line: hit (1 cycle)
        second = ctx.machine().now() - t0;
    });
    m.run();
    EXPECT_EQ(first, CostModel{}.cacheMissFill);
    EXPECT_EQ(second, CostModel{}.cacheHit);
}

TEST(Processor, DisablingCacheModelMakesLocalReadsUniform)
{
    MachineConfig cfg = cfgFor(1);
    cfg.cost.modelCache = false;
    Machine m(cfg);
    const Addr page = m.alloc(kPageBytes, 0);
    Cycles first = 0;
    m.spawn(0, [&](Context& ctx) {
        ctx.read(page);
        const Cycles t0 = ctx.machine().now();
        ctx.read(page + 4 * 64);
        first = ctx.machine().now() - t0;
    });
    m.run();
    EXPECT_EQ(first, CostModel{}.cacheHit);
}

TEST(Processor, PageFaultChargedOnce)
{
    Machine m(cfgFor(2));
    const Addr page = m.alloc(kPageBytes, 1);
    m.spawn(0, [&](Context& ctx) {
        ctx.read(page);
        ctx.read(page + 8);
        ctx.read(page + 16);
    });
    m.run();
    const auto& ps = m.nodeAt(0).processor().stats();
    EXPECT_EQ(ps.pageFaults, 1u);
    EXPECT_EQ(ps.stall[static_cast<unsigned>(node::StallKind::PageFault)],
              CostModel{}.osPageFillCycles);
}

TEST(Processor, DelayedIssueOverlapsWithCompute)
{
    // If computation fully covers the operation's round trip, the
    // delayed run's elapsed time is shorter than the blocking one's by
    // (roughly) the hidden latency.
    auto run = [](bool overlap) {
        Machine m(cfgFor(4));
        const Addr page = m.alloc(kPageBytes, 3);
        Cycles elapsed = 0;
        m.spawn(0, [&, overlap](Context& ctx) {
            ctx.read(page); // warm translation
            const Cycles t0 = ctx.machine().now();
            for (int i = 0; i < 10; ++i) {
                if (overlap) {
                    OpHandle h = ctx.issueFadd(page, 1);
                    ctx.compute(300);
                    ctx.verify(h);
                } else {
                    ctx.fadd(page, 1);
                    ctx.compute(300);
                }
            }
            elapsed = ctx.machine().now() - t0;
        });
        m.run();
        return elapsed;
    };
    const Cycles delayed = run(true);
    const Cycles blocking = run(false);
    EXPECT_LT(delayed, blocking);
    // The hidden part is the manager round trip (~63 cycles x 10 ops).
    EXPECT_GT(blocking - delayed, 400u);
}

TEST(Processor, ContextSwitchHidesVerifyLatency)
{
    // Two resident threads: while one waits for its interlocked result,
    // the other runs. Total elapsed < sum of serialized thread times.
    MachineConfig cfg = cfgFor(4, ProcessorMode::ContextSwitch);
    cfg.cost.ctxSwitchCycles = 16;
    Machine m(cfg);
    const Addr page = m.alloc(kPageBytes, 3);
    for (int t = 0; t < 2; ++t) {
        m.spawn(0, [&](Context& ctx) {
            for (int i = 0; i < 20; ++i) {
                ctx.fadd(page, 1);
                ctx.compute(40);
            }
        });
    }
    m.run();
    EXPECT_EQ(m.peek(page), 40u);
    const auto& ps = m.nodeAt(0).processor().stats();
    EXPECT_GT(ps.ctxSwitches, 10u);

    // Compare against blocking mode with the same total work serialized.
    Machine m2(cfgFor(4, ProcessorMode::Blocking));
    const Addr page2 = m2.alloc(kPageBytes, 3);
    m2.spawn(0, [&](Context& ctx) {
        for (int i = 0; i < 40; ++i) {
            ctx.fadd(page2, 1);
            ctx.compute(40);
        }
    });
    m2.run();
    EXPECT_LT(m.now(), m2.now());
}

TEST(Processor, HighSwitchCostErasesTheBenefit)
{
    auto run = [](Cycles switch_cost) {
        MachineConfig cfg = cfgFor(4, ProcessorMode::ContextSwitch);
        cfg.cost.ctxSwitchCycles = switch_cost;
        Machine m(cfg);
        const Addr page = m.alloc(kPageBytes, 3);
        for (int t = 0; t < 2; ++t) {
            m.spawn(0, [&](Context& ctx) {
                for (int i = 0; i < 20; ++i) {
                    ctx.fadd(page, 1);
                    ctx.compute(40);
                }
            });
        }
        m.run();
        return m.now();
    };
    EXPECT_LT(run(16), run(140));
}

TEST(Processor, WritesDoNotBlockUntilCapacity)
{
    // A single remote write must cost only its issue time at the
    // processor; the chain completes in the background.
    Machine m(cfgFor(4));
    const Addr page = m.alloc(kPageBytes, 3);
    Cycles write_cost = 0;
    m.spawn(0, [&](Context& ctx) {
        ctx.read(page); // warm translation
        const Cycles t0 = ctx.machine().now();
        ctx.write(page, 1);
        write_cost = ctx.machine().now() - t0;
    });
    m.run();
    EXPECT_EQ(write_cost, CostModel{}.procIssueWrite);
}

TEST(Processor, FenceWaitsOutTheChain)
{
    Machine m(cfgFor(4));
    const Addr page = m.alloc(kPageBytes, 3);
    Cycles fence_cost = 0;
    m.spawn(0, [&](Context& ctx) {
        ctx.read(page);
        ctx.write(page, 1);
        const Cycles t0 = ctx.machine().now();
        ctx.fence();
        fence_cost = ctx.machine().now() - t0;
    });
    m.run();
    // The write's round trip (minus the issue cost already paid).
    EXPECT_GT(fence_cost, 20u);
}

TEST(Processor, PauseSharesTheProcessorBetweenResidentThreads)
{
    // A spinning thread that uses pause() must let its co-resident
    // thread run in ContextSwitch mode (a bare busy loop would not).
    MachineConfig cfg = cfgFor(2, ProcessorMode::ContextSwitch);
    cfg.cost.ctxSwitchCycles = 16;
    Machine m(cfg);
    const Addr flag = m.alloc(kPageBytes, 0);
    bool spinner_done = false;
    m.spawn(0, [&](Context& ctx) {
        while (ctx.read(flag) == 0) {
            ctx.pause(8);
        }
        spinner_done = true;
    });
    m.spawn(0, [&](Context& ctx) {
        ctx.compute(2000);
        ctx.write(flag, 1); // runs on the same processor as the spinner
    });
    m.run();
    EXPECT_TRUE(spinner_done);
}

} // namespace
} // namespace core
} // namespace plus
