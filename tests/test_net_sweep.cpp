/**
 * @file
 * Parameterized network sweeps: the zero-load latency formula must hold
 * for every source/destination pair on meshes of several shapes, the
 * mesh must agree with the ideal model at zero load, and per-route FIFO
 * must hold under randomized traffic (the page-copy protocol's
 * correctness rests on it).
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"

namespace plus {
namespace net {
namespace {

struct MeshShape {
    unsigned nodes;
    unsigned width;
};

class MeshSweep : public ::testing::TestWithParam<MeshShape>
{
};

TEST_P(MeshSweep, ZeroLoadLatencyMatchesFormulaForAllPairs)
{
    const MeshShape shape = GetParam();
    const unsigned height = (shape.nodes + shape.width - 1) / shape.width;
    Topology topo(shape.nodes, shape.width, height);
    NetworkConfig cfg;

    for (NodeId src = 0; src < shape.nodes; ++src) {
        for (NodeId dst = 0; dst < shape.nodes; ++dst) {
            if (src == dst) {
                continue;
            }
            // Fresh engine+network per pair: zero load by construction.
            sim::Engine engine;
            MeshNetwork network(engine, topo, cfg);
            Cycles delivered_at = 0;
            for (NodeId n = 0; n < shape.nodes; ++n) {
                network.setDeliveryHandler(n, [&](Packet) {
                    delivered_at = engine.now();
                });
            }
            Packet p;
            p.src = src;
            p.dst = dst;
            p.payloadBytes = 8;
            network.send(std::move(p));
            engine.run();
            EXPECT_EQ(delivered_at,
                      network.zeroLoadLatency(topo.distance(src, dst)))
                << src << " -> " << dst;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MeshSweep,
    ::testing::Values(MeshShape{4, 2}, MeshShape{6, 3}, MeshShape{7, 3},
                      MeshShape{16, 4}, MeshShape{12, 4},
                      MeshShape{9, 3}),
    [](const ::testing::TestParamInfo<MeshShape>& info) {
        return "n" + std::to_string(info.param.nodes) + "_w" +
               std::to_string(info.param.width);
    });

TEST(MeshFifo, RandomTrafficNeverReordersWithinARoute)
{
    Topology topo(16, 4, 4);
    NetworkConfig cfg;
    sim::Engine engine;
    MeshNetwork network(engine, topo, cfg);

    // Tag each packet with a per-route sequence number via payload size
    // ordering records kept on the side.
    struct Key {
        NodeId src, dst;
        bool operator<(const Key& o) const
        {
            return src != o.src ? src < o.src : dst < o.dst;
        }
    };
    std::map<Key, unsigned> next_expected;
    std::map<const Payload*, std::pair<Key, unsigned>> tags;
    bool ok = true;

    struct Tag : Payload {
        Key key;
        unsigned seq;
    };

    for (NodeId n = 0; n < 16; ++n) {
        network.setDeliveryHandler(n, [&](Packet p) {
            auto* tag = static_cast<Tag*>(p.payload.get());
            unsigned& expected = next_expected[tag->key];
            if (tag->seq != expected) {
                ok = false;
            }
            ++expected;
        });
    }

    Xoshiro256 rng(31);
    std::map<Key, unsigned> next_seq;
    for (int i = 0; i < 2000; ++i) {
        const auto src = static_cast<NodeId>(rng.below(16));
        auto dst = static_cast<NodeId>(rng.below(16));
        if (dst == src) {
            dst = (dst + 1) % 16;
        }
        const Key key{src, dst};
        const unsigned bytes = 4 + static_cast<unsigned>(rng.below(28));
        // Inject in bursts at varying times; the per-route sequence
        // number is taken at *injection* time (FIFO is an injection-
        // order property).
        engine.schedule(rng.below(500),
                        [&network, &next_seq, key, bytes] {
                            auto tag = std::make_unique<Tag>();
                            tag->key = key;
                            tag->seq = next_seq[key]++;
                            Packet p;
                            p.src = key.src;
                            p.dst = key.dst;
                            p.payloadBytes = bytes;
                            p.payload = std::move(tag);
                            network.send(std::move(p));
                        });
    }
    engine.run();
    EXPECT_TRUE(ok);
    EXPECT_EQ(network.stats().packets, 2000u);
}

TEST(MeshFifo, HeavyBurstOnOneRouteStaysOrderedAndConserved)
{
    Topology topo(9, 3, 3);
    NetworkConfig cfg;
    sim::Engine engine;
    MeshNetwork network(engine, topo, cfg);
    unsigned delivered = 0;
    Cycles last = 0;
    bool ordered = true;
    for (NodeId n = 0; n < 9; ++n) {
        network.setDeliveryHandler(n, [&](Packet) {
            if (engine.now() < last) {
                ordered = false;
            }
            last = engine.now();
            ++delivered;
        });
    }
    for (int i = 0; i < 500; ++i) {
        Packet p;
        p.src = 0;
        p.dst = 8;
        p.payloadBytes = 16;
        network.send(std::move(p));
    }
    engine.run();
    EXPECT_EQ(delivered, 500u);
    EXPECT_TRUE(ordered);
    // With 24-byte messages at 0.8 B/cycle, the injection link is busy
    // for 500 * 30 cycles.
    EXPECT_GE(network.maxLinkBusyCycles(), 500u * 30u);
}

} // namespace
} // namespace net
} // namespace plus
