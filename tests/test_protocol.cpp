/**
 * @file
 * The proto::Protocol seam and the write-invalidate backend: the
 * builder/config plumbing (knob, env override, validate() rejections),
 * the protocol's visible behavior (invalidate-on-write,
 * re-fetch-on-read-miss, chain skipping, ownership accounting), the
 * per-protocol invariant sets of the checker, and end-to-end image
 * equivalence between the two protocols on a deterministic workload.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "check/checker.hpp"
#include "core/context.hpp"
#include "node/node.hpp"
#include "plus/plus.hpp"
#include "proto/messages.hpp"
#include "proto/write_invalidate.hpp"

namespace plus {
namespace {

std::unique_ptr<Machine>
invalidateMachine(unsigned nodes)
{
    return MachineBuilder()
        .nodes(nodes)
        .framesPerNode(64)
        .protocol(Protocol::WriteInvalidate)
        .build();
}

proto::WriteInvalidateProtocol&
invalidateProtocolAt(Machine& m, NodeId node)
{
    proto::Protocol& p = m.nodeAt(node).cm().protocol();
    EXPECT_EQ(p.kind(), CoherenceProtocol::WriteInvalidate);
    return static_cast<proto::WriteInvalidateProtocol&>(p);
}

// --------------------------------------------------------------------------
// Builder knob, strings, and MachineConfig::validate()
// --------------------------------------------------------------------------

TEST(ProtocolConfig, BuilderKnobSetsProtocolAndOptsIn)
{
    const MachineBuilder b =
        MachineBuilder().nodes(2).protocol(Protocol::WriteInvalidate);
    EXPECT_EQ(b.config().protocol, CoherenceProtocol::WriteInvalidate);
    EXPECT_TRUE(b.config().protocolOptIn);

    const MachineBuilder a = MachineBuilder().protocol(Protocol::Auto);
    EXPECT_EQ(a.config().protocol, CoherenceProtocol::Env);

    // No knob: the implicit default stays Env (resolved to write-update).
    EXPECT_EQ(MachineBuilder().config().protocol, CoherenceProtocol::Env);
    EXPECT_FALSE(MachineBuilder().config().protocolOptIn);
}

TEST(ProtocolConfig, StringsRoundTrip)
{
    Protocol p = Protocol::Auto;
    EXPECT_TRUE(protocolFromString("update", p));
    EXPECT_EQ(p, Protocol::WriteUpdate);
    EXPECT_TRUE(protocolFromString("write-invalidate", p));
    EXPECT_EQ(p, Protocol::WriteInvalidate);
    EXPECT_TRUE(protocolFromString("auto", p));
    EXPECT_EQ(p, Protocol::Auto);
    EXPECT_FALSE(protocolFromString("mesi", p));
    EXPECT_STREQ(toString(Protocol::WriteInvalidate), "write-invalidate");
}

TEST(ProtocolConfig, EnvOverrideResolvesThroughValidate)
{
    MachineConfig cfg;
    cfg.nodes = 2;

    ::setenv("PLUS_PROTOCOL", "invalidate", 1);
    cfg.validate();
    EXPECT_EQ(cfg.resolvedProtocol(), CoherenceProtocol::WriteInvalidate);

    ::setenv("PLUS_PROTOCOL", "mosi", 1);
    EXPECT_THROW(cfg.validate(), FatalError); // unknown protocol name

    ::unsetenv("PLUS_PROTOCOL");
    cfg.validate();
    EXPECT_EQ(cfg.resolvedProtocol(), CoherenceProtocol::WriteUpdate);
}

TEST(ProtocolConfig, ValidateRejectsBadCombinations)
{
    {
        // Protocol override on the deprecated direct-config path needs
        // the explicit opt-in flag.
        MachineConfig cfg;
        cfg.nodes = 2;
        cfg.protocol = CoherenceProtocol::WriteInvalidate;
        EXPECT_THROW(cfg.validate(), FatalError);
        cfg.protocolOptIn = true;
        cfg.validate();
        EXPECT_EQ(cfg.resolvedProtocol(),
                  CoherenceProtocol::WriteInvalidate);
    }
    {
        // Fail-stop recovery re-masters from possibly-invalid replicas.
        MachineConfig cfg;
        cfg.nodes = 2;
        cfg.protocol = CoherenceProtocol::WriteInvalidate;
        cfg.protocolOptIn = true;
        cfg.network.fault.enabled = true;
        cfg.network.fault.recover = true;
        EXPECT_THROW(cfg.validate(), FatalError);
    }
    {
        // Fenced-page replica declarations assume update-chain fences.
        MachineConfig cfg;
        cfg.nodes = 2;
        cfg.protocol = CoherenceProtocol::WriteInvalidate;
        cfg.protocolOptIn = true;
        cfg.network.fault.enabled = true;
        cfg.network.fault.fencedPageReplicas.push_back({0, 1});
        EXPECT_THROW(cfg.validate(), FatalError);
    }
}

// --------------------------------------------------------------------------
// Write-invalidate machine behavior
// --------------------------------------------------------------------------

TEST(ProtocolInvalidate, WriteInvalidatesSharersAndReadRefetches)
{
    auto m = invalidateMachine(2);
    const Addr base = m->alloc(kPageBytes, 0);
    m->replicate(base, 1);
    m->settle();

    m->spawn(0, [base](Context& ctx) {
        ctx.write(base, 42);
        ctx.fence();
    });
    Word first = 0;
    Word second = 0;
    m->spawn(1, [base, &first, &second](Context& ctx) {
        ctx.compute(50'000); // well past the writer's fence
        first = ctx.read(base);  // invalid at this copy: re-fetch
        second = ctx.read(base); // revalidated: served locally
    });
    m->run();

    EXPECT_EQ(first, 42u);
    EXPECT_EQ(second, 42u);
    // The write invalidated the sharer's word instead of updating it...
    EXPECT_GE(m->nodeAt(1).cm().stats().invalidations, 1u);
    // ...and exactly the first read had to go back to the master.
    EXPECT_EQ(m->nodeAt(1).cm().stats().refetches, 1u);
    EXPECT_EQ(m->peek(base), 42u);
}

TEST(ProtocolInvalidate, CommittedWordsSkipTheChain)
{
    auto m = invalidateMachine(2);
    const Addr base = m->alloc(kPageBytes, 0);
    m->replicate(base, 1);
    m->settle();

    m->spawn(0, [base](Context& ctx) {
        ctx.write(base, 1); // chains: the sharer's copy is still valid
        ctx.fence();
        ctx.write(base, 2); // the word is invalid everywhere: no chain
        ctx.write(base, 3);
        ctx.fence();
    });
    m->run();

    // One chain (one UpdateReq on the 2-node list) for the first write;
    // the rewrites retire at the master with the word committed invalid.
    EXPECT_EQ(m->nodeAt(0).cm().stats().sentOf(proto::MsgType::UpdateReq),
              1u);
    proto::WriteInvalidateProtocol& wi = invalidateProtocolAt(*m, 0);
    const FrameId master_frame = m->copyListOf(base).master().frame;
    EXPECT_EQ(wi.invalidEverywhere(master_frame), 1u);
    EXPECT_EQ(m->peek(base), 3u);
}

TEST(ProtocolInvalidate, WriterHandoffCountsOwnershipTransfers)
{
    auto m = invalidateMachine(2);
    const Addr base = m->alloc(kPageBytes, 0);
    m->replicate(base, 1);
    m->settle();

    m->spawn(0, [base](Context& ctx) {
        ctx.write(base, 1);
        ctx.fence();
    });
    m->spawn(1, [base](Context& ctx) {
        ctx.compute(50'000);
        ctx.write(base + 4, 2); // a different node takes over writing
        ctx.fence();
    });
    m->run();

    EXPECT_EQ(m->nodeAt(0).cm().stats().ownershipTransfers, 1u);
    EXPECT_EQ(m->peek(base), 1u);
    EXPECT_EQ(m->peek(base + 4), 2u);
}

TEST(ProtocolInvalidate, ImageMatchesWriteUpdateOnSharedWorkload)
{
    // The protocols order writes identically (master-first); only the
    // traffic differs. A deterministic mixed workload must land on the
    // same memory image under both.
    auto runImage = [](Protocol p) {
        auto m = MachineBuilder()
                     .nodes(4)
                     .framesPerNode(64)
                     .protocol(p)
                     .build();
        std::vector<Addr> pages(4);
        for (NodeId n = 0; n < 4; ++n) {
            pages[n] = m->alloc(kPageBytes, n);
            m->replicate(pages[n], (n + 1) % 4);
        }
        m->settle();
        for (NodeId n = 0; n < 4; ++n) {
            m->spawn(n, [&pages, n](Context& ctx) {
                for (Word i = 0; i < 12; ++i) {
                    ctx.write(pages[n] + 4 * (i % 8), n * 100 + i);
                    ctx.read(pages[(n + 1) % 4] + 4 * (i % 8));
                    if (i % 3 == 0) {
                        ctx.fadd(pages[0] + 4 * 15, 1);
                    }
                    ctx.compute(15);
                }
                ctx.fence();
            });
        }
        m->run();
        m->settle();
        std::vector<Word> image;
        for (NodeId n = 0; n < 4; ++n) {
            for (Word w = 0; w < 16; ++w) {
                image.push_back(m->peek(pages[n] + 4 * w));
            }
        }
        return image;
    };
    EXPECT_EQ(runImage(Protocol::WriteUpdate),
              runImage(Protocol::WriteInvalidate));
}

// --------------------------------------------------------------------------
// Per-protocol invariant sets
// --------------------------------------------------------------------------

check::Options
invariantsOnly()
{
    check::Options opts;
    opts.invariants = true;
    opts.races = false;
    return opts;
}

TEST(ProtocolChecker, InvalidateHooksAreViolationsUnderUpdate)
{
    check::Checker c(invariantsOnly(), nullptr);
    ASSERT_EQ(c.invariants()->protocol(), check::ProtocolMode::WriteUpdate);
    EXPECT_THROW(c.onWordInvalidated(0, /*vpn=*/3, /*word=*/5), PanicError);
}

TEST(ProtocolChecker, StaleLocalReadDetectedUnderInvalidate)
{
    check::Checker c(invariantsOnly(), nullptr);
    c.invariants()->setProtocol(check::ProtocolMode::WriteInvalidate);
    c.onWordInvalidated(1, /*vpn=*/3, /*word=*/5);
    // Serving the invalidated word from the local copy is the seeded bug.
    EXPECT_THROW(c.onLocalValueServed(1, 3, 5), PanicError);
}

TEST(ProtocolChecker, RevalidatedWordServesCleanly)
{
    check::Checker c(invariantsOnly(), nullptr);
    c.invariants()->setProtocol(check::ProtocolMode::WriteInvalidate);
    c.onWordInvalidated(1, /*vpn=*/3, /*word=*/5);
    c.onWordRevalidated(1, 3, 5);
    EXPECT_NO_THROW(c.onLocalValueServed(1, 3, 5));
    // Other words of the page are unaffected throughout.
    EXPECT_NO_THROW(c.onLocalValueServed(1, 3, 6));
}

TEST(ProtocolChecker, ChainlessRetireLegalOnlyUnderInvalidate)
{
    {
        check::Checker c(invariantsOnly(), nullptr);
        c.onPendingInsert(0, /*tag=*/1, /*vpn=*/2, /*word=*/0);
        c.onWriteIssued(0, /*tag=*/1, /*vpn=*/2, /*word=*/0,
                        /*from_rmw=*/false);
        // Under write-update a write must traverse its chain before
        // retiring; a chainless retire is the seeded bug.
        EXPECT_THROW(c.onPendingComplete(0, 1), PanicError);
    }
    {
        check::Checker c(invariantsOnly(), nullptr);
        c.invariants()->setProtocol(check::ProtocolMode::WriteInvalidate);
        c.onPendingInsert(0, /*tag=*/1, /*vpn=*/2, /*word=*/0);
        c.onWriteIssued(0, /*tag=*/1, /*vpn=*/2, /*word=*/0,
                        /*from_rmw=*/false);
        // Write-invalidate legally skips the chain for committed words.
        EXPECT_NO_THROW(c.onPendingComplete(0, 1));
    }
}

TEST(ProtocolChecker, InjectedChainAtSharerPanicsUnderInvalidate)
{
    auto m = invalidateMachine(2);
    const Addr base = m->alloc(kPageBytes, 0);
    m->replicate(base, 1);
    m->settle();

    const mem::CopyList& cl = m->copyListOf(base);
    ASSERT_EQ(cl.size(), 2u);
    const PhysPage replica = cl.copies()[1];

    // A chain that never began at the master, injected at the sharer:
    // the invalidate-mode checker must reject it like the update-mode
    // checker does (tests/test_check.cpp UpdateBypassingMasterIsDetected).
    auto msg = std::make_unique<proto::UpdateReq>();
    msg->target = replica;
    msg->vpn = pageOf(base);
    msg->writes.push_back(proto::WordWrite{3, 42});
    msg->originator = 0;
    msg->tag = 7;
    msg->chainId = 12345; // never assigned by any master
    msg->needAck = false;
    msg->invalidate = true;
    const unsigned bytes = msg->bytes();

    net::Packet packet;
    packet.src = 0;
    packet.dst = 1;
    packet.payloadBytes = bytes;
    packet.payload = std::move(msg);
    m->nodeAt(1).cm().onPacket(std::move(packet));

    EXPECT_THROW(m->settle(), PanicError);
}

} // namespace
} // namespace plus
