/**
 * @file
 * Tests of measurement-driven placement (Section 2.4): profile
 * collection from the hardware reference counters, plan derivation
 * (replication and master migration), quiesced master promotion, and
 * end-to-end improvement of a skewed workload.
 */

#include <gtest/gtest.h>

#include "core/context.hpp"
#include "core/machine.hpp"
#include "core/placement.hpp"

namespace plus {
namespace core {
namespace {

MachineConfig
cfgFor(unsigned nodes)
{
    MachineConfig cfg;
    cfg.nodes = nodes;
    cfg.framesPerNode = 64;
    return cfg;
}

/** Skewed read workload: node 3 hammers a page homed on node 0. */
Cycles
runSkewedReaders(Machine& m, Addr page)
{
    for (NodeId n = 1; n < 4; ++n) {
        m.spawn(n, [page, n](Context& ctx) {
            const int reads = n == 3 ? 400 : 20;
            for (int i = 0; i < reads; ++i) {
                ctx.read(page + 4 * (i % 32));
                ctx.compute(20);
            }
        });
    }
    const Cycles start = m.now();
    m.run();
    return m.now() - start;
}

TEST(Placement, ProfileCountsRemoteReferences)
{
    Machine m(cfgFor(4));
    const Addr page = m.alloc(kPageBytes, 0);
    AccessProfile::profileEnable(m);
    runSkewedReaders(m, page);
    const AccessProfile profile = AccessProfile::collect(m);
    EXPECT_GT(profile.total(), 0u);
    EXPECT_GT(profile.count(3, pageOf(page)), profile.count(1,
                                                            pageOf(page)));
    EXPECT_EQ(profile.count(0, pageOf(page)), 0u); // home node is local
    ASSERT_FALSE(profile.hotPages().empty());
    EXPECT_EQ(profile.hotPages().front(), pageOf(page));
}

TEST(Placement, PlanReplicatesForHotReaders)
{
    Machine m(cfgFor(4));
    const Addr page = m.alloc(kPageBytes, 0);
    AccessProfile::profileEnable(m);
    runSkewedReaders(m, page);
    const AccessProfile profile = AccessProfile::collect(m);

    PlacementPolicy policy;
    policy.replicateThreshold = 100;
    policy.migrateFraction = 0.99; // node 3 is hot but not exclusive
    const PlacementPlan plan = derivePlan(m, profile, policy);
    ASSERT_EQ(plan.replications.size(), 1u);
    EXPECT_EQ(plan.replications[0].vpn, pageOf(page));
    EXPECT_EQ(plan.replications[0].target, 3u);
    EXPECT_TRUE(plan.migrations.empty());
}

TEST(Placement, PlanMigratesForDominantConsumer)
{
    Machine m(cfgFor(4));
    const Addr page = m.alloc(kPageBytes, 0);
    AccessProfile::profileEnable(m);
    // Only node 3 references the page at all.
    m.spawn(3, [page](Context& ctx) {
        for (int i = 0; i < 300; ++i) {
            ctx.read(page);
            ctx.compute(10);
        }
    });
    m.run();
    const AccessProfile profile = AccessProfile::collect(m);

    PlacementPolicy policy;
    policy.replicateThreshold = 100;
    const PlacementPlan plan = derivePlan(m, profile, policy);
    ASSERT_EQ(plan.migrations.size(), 1u);
    EXPECT_EQ(plan.migrations[0].from, 0u);
    EXPECT_EQ(plan.migrations[0].to, 3u);
}

TEST(Placement, PromoteMasterRewiresChain)
{
    Machine m(cfgFor(4));
    const Addr page = m.alloc(kPageBytes, 0);
    m.poke(page, 11);
    m.replicate(page, 1);
    m.replicate(page, 2);
    m.settle();

    m.promoteMasterQuiesced(page, 2);
    EXPECT_EQ(m.copyListOf(page).master().node, 2u);
    EXPECT_EQ(m.copyListOf(page).size(), 3u);
    EXPECT_EQ(m.peek(page), 11u); // data intact

    // Writes from anywhere still reach every copy, with the new master
    // first in the chain.
    m.spawn(3, [&](Context& ctx) {
        ctx.write(page, 77);
        ctx.fence();
    });
    m.run();
    for (const PhysPage& copy : m.copyListOf(page).copies()) {
        EXPECT_EQ(m.nodeAt(copy.node).memory().read(copy.frame, 0), 77u);
    }

    // And the old master can now be deleted (it is a plain copy).
    m.deleteCopy(page, 0);
    m.settle();
    EXPECT_FALSE(m.copyListOf(page).hasCopyOn(0));
}

TEST(Placement, AppliedPlanSpeedsUpTheSecondRun)
{
    // Profile run.
    Machine profile_machine(cfgFor(4));
    const Addr page1 = profile_machine.alloc(kPageBytes, 0);
    AccessProfile::profileEnable(profile_machine);
    const Cycles before = runSkewedReaders(profile_machine, page1);
    const AccessProfile profile = AccessProfile::collect(profile_machine);

    PlacementPolicy policy;
    policy.replicateThreshold = 64;
    const PlacementPlan plan =
        derivePlan(profile_machine, profile, policy);
    ASSERT_GT(plan.actions(), 0u);

    // Second run on a fresh machine with the same allocation layout.
    Machine optimized(cfgFor(4));
    const Addr page2 = optimized.alloc(kPageBytes, 0);
    ASSERT_EQ(page1, page2); // same vpns: the plan transfers
    applyPlan(optimized, plan);
    const Cycles after = runSkewedReaders(optimized, page2);

    EXPECT_LT(after, before);
}

} // namespace
} // namespace core
} // namespace plus
