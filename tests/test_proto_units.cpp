/**
 * @file
 * Unit tests for the protocol building blocks: the RMW semantics of
 * Table 3-1, the pending-writes cache, and the delayed-operations cache.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "proto/delayed_ops.hpp"
#include "proto/pending_writes.hpp"
#include "proto/rmw.hpp"

namespace plus {
namespace proto {
namespace {

/** In-memory page for exercising executeRmw. */
class FakePage
{
  public:
    PageView
    view()
    {
        return PageView{[this](Addr off) { return words_[off]; }};
    }

    void
    apply(const RmwResult& result)
    {
        for (const auto& w : result.writes) {
            words_[w.wordOffset] = w.value;
        }
    }

    Word& operator[](Addr off) { return words_[off]; }

  private:
    std::map<Addr, Word> words_;
};

constexpr Addr kQueueBase = 2;

TEST(Rmw, XchngReturnsOldWritesNew)
{
    FakePage page;
    page[5] = 10;
    const RmwResult r =
        executeRmw(page.view(), RmwOp::Xchng, 5, 99, kQueueBase);
    EXPECT_EQ(r.oldValue, 10u);
    ASSERT_EQ(r.writes.size(), 1u);
    EXPECT_EQ(r.writes[0].wordOffset, 5u);
    EXPECT_EQ(r.writes[0].value, 99u);
}

TEST(Rmw, CondXchngWritesOnlyWhenTopBitSet)
{
    FakePage page;
    page[5] = 10; // top bit clear
    EXPECT_TRUE(executeRmw(page.view(), RmwOp::CondXchng, 5, 99,
                           kQueueBase)
                    .writes.empty());
    page[5] = 10 | kTopBit;
    const RmwResult r =
        executeRmw(page.view(), RmwOp::CondXchng, 5, 99, kQueueBase);
    EXPECT_EQ(r.oldValue, 10 | kTopBit);
    ASSERT_EQ(r.writes.size(), 1u);
    EXPECT_EQ(r.writes[0].value, 99u);
}

TEST(Rmw, FetchAddWrapsTwosComplement)
{
    FakePage page;
    page[0] = 5;
    const RmwResult r = executeRmw(page.view(), RmwOp::FetchAdd, 0,
                                   static_cast<Word>(-7), kQueueBase);
    EXPECT_EQ(r.oldValue, 5u);
    EXPECT_EQ(r.writes[0].value, static_cast<Word>(-2));
}

TEST(Rmw, FetchSetSetsTopBitOnly)
{
    FakePage page;
    page[0] = 123;
    const RmwResult r =
        executeRmw(page.view(), RmwOp::FetchSet, 0, 0, kQueueBase);
    EXPECT_EQ(r.oldValue, 123u);
    EXPECT_EQ(r.writes[0].value, 123u | kTopBit);
}

TEST(Rmw, MinXchngStoresOnlySmaller)
{
    FakePage page;
    page[0] = 100;
    EXPECT_TRUE(executeRmw(page.view(), RmwOp::MinXchng, 0, 100,
                           kQueueBase)
                    .writes.empty()); // equal is not smaller
    const RmwResult r =
        executeRmw(page.view(), RmwOp::MinXchng, 0, 99, kQueueBase);
    EXPECT_EQ(r.writes[0].value, 99u);
}

TEST(Rmw, DelayedReadHasNoWrites)
{
    FakePage page;
    page[9] = 77;
    const RmwResult r =
        executeRmw(page.view(), RmwOp::DelayedRead, 9, 0, kQueueBase);
    EXPECT_EQ(r.oldValue, 77u);
    EXPECT_TRUE(r.writes.empty());
}

TEST(Rmw, QueueDepositsAndAdvancesTail)
{
    FakePage page;
    page[0] = kQueueBase; // QP: tail at slot 2
    const RmwResult r =
        executeRmw(page.view(), RmwOp::Queue, 0, 41, kQueueBase);
    EXPECT_EQ(r.oldValue, 0u); // slot was empty
    ASSERT_EQ(r.writes.size(), 2u);
    EXPECT_EQ(r.writes[0].wordOffset, kQueueBase);
    EXPECT_EQ(r.writes[0].value, 41u | kTopBit);
    EXPECT_EQ(r.writes[1].wordOffset, 0u); // the QP word itself
    EXPECT_EQ(r.writes[1].value, kQueueBase + 1);
}

TEST(Rmw, QueueFullReturnsTopBitAndWritesNothing)
{
    FakePage page;
    page[0] = kQueueBase;
    page[kQueueBase] = 5 | kTopBit; // slot already full
    const RmwResult r =
        executeRmw(page.view(), RmwOp::Queue, 0, 41, kQueueBase);
    EXPECT_EQ(r.oldValue, 5 | kTopBit);
    EXPECT_TRUE(r.writes.empty());
}

TEST(Rmw, DequeueTakesAndAdvancesHead)
{
    FakePage page;
    page[1] = kQueueBase; // DQP
    page[kQueueBase] = 41 | kTopBit;
    const RmwResult r =
        executeRmw(page.view(), RmwOp::Dequeue, 1, 0, kQueueBase);
    EXPECT_EQ(r.oldValue, 41 | kTopBit);
    ASSERT_EQ(r.writes.size(), 2u);
    EXPECT_EQ(r.writes[0].value, 41u); // full bit cleared
    EXPECT_EQ(r.writes[1].wordOffset, 1u);
    EXPECT_EQ(r.writes[1].value, kQueueBase + 1);
}

TEST(Rmw, DequeueEmptyWritesNothing)
{
    FakePage page;
    page[1] = kQueueBase;
    const RmwResult r =
        executeRmw(page.view(), RmwOp::Dequeue, 1, 0, kQueueBase);
    EXPECT_EQ(r.oldValue, 0u); // top bit clear = empty
    EXPECT_TRUE(r.writes.empty());
}

TEST(Rmw, QueueOffsetWrapsAtPageEnd)
{
    FakePage page;
    page[0] = kPageWords - 1; // tail at the last word
    const RmwResult r =
        executeRmw(page.view(), RmwOp::Queue, 0, 1, kQueueBase);
    ASSERT_EQ(r.writes.size(), 2u);
    EXPECT_EQ(r.writes[1].value, kQueueBase); // wrapped
}

TEST(Rmw, QueueRoundTripThroughFullPage)
{
    // Property: pushing then popping N items through the circular queue
    // preserves order and leaves the queue empty.
    FakePage page;
    page[0] = kQueueBase;
    page[1] = kQueueBase;
    const unsigned n = 100;
    for (Word i = 0; i < n; ++i) {
        const RmwResult r =
            executeRmw(page.view(), RmwOp::Queue, 0, i, kQueueBase);
        ASSERT_FALSE(r.oldValue & kTopBit);
        page.apply(r);
    }
    for (Word i = 0; i < n; ++i) {
        const RmwResult r =
            executeRmw(page.view(), RmwOp::Dequeue, 1, 0, kQueueBase);
        ASSERT_TRUE(r.oldValue & kTopBit);
        EXPECT_EQ(r.oldValue & kPayloadMask, i);
        page.apply(r);
    }
    const RmwResult r =
        executeRmw(page.view(), RmwOp::Dequeue, 1, 0, kQueueBase);
    EXPECT_FALSE(r.oldValue & kTopBit);
}

TEST(Rmw, ComplexOpsAreTheFiftyTwoCycleOnes)
{
    EXPECT_TRUE(isComplexOp(RmwOp::Queue));
    EXPECT_TRUE(isComplexOp(RmwOp::Dequeue));
    EXPECT_TRUE(isComplexOp(RmwOp::MinXchng));
    EXPECT_FALSE(isComplexOp(RmwOp::Xchng));
    EXPECT_FALSE(isComplexOp(RmwOp::FetchAdd));
    EXPECT_FALSE(isComplexOp(RmwOp::DelayedRead));
}

// --- PendingWrites -----------------------------------------------------------

TEST(PendingWrites, TracksInFlightByAddress)
{
    PendingWrites pw(8);
    EXPECT_TRUE(pw.empty());
    const auto tag = pw.insert(1, 5);
    EXPECT_TRUE(pw.pendingOn(1, 5));
    EXPECT_FALSE(pw.pendingOn(1, 6));
    EXPECT_FALSE(pw.pendingOn(2, 5));
    pw.complete(tag);
    EXPECT_TRUE(pw.empty());
}

TEST(PendingWrites, FullAtCapacity)
{
    PendingWrites pw(2);
    pw.insert(1, 0);
    pw.insert(1, 1);
    EXPECT_TRUE(pw.full());
    EXPECT_THROW(pw.insert(1, 2), PanicError);
}

TEST(PendingWrites, WhenEmptyFiresOnDrain)
{
    PendingWrites pw(4);
    const auto t1 = pw.insert(1, 0);
    const auto t2 = pw.insert(1, 1);
    int fired = 0;
    pw.whenEmpty([&] { ++fired; });
    pw.complete(t1);
    EXPECT_EQ(fired, 0);
    pw.complete(t2);
    EXPECT_EQ(fired, 1);
}

TEST(PendingWrites, WhenEmptyImmediateIfEmpty)
{
    PendingWrites pw(4);
    int fired = 0;
    pw.whenEmpty([&] { ++fired; });
    EXPECT_EQ(fired, 1);
}

TEST(PendingWrites, WhenSlotFreeQueuesBehindCapacity)
{
    PendingWrites pw(1);
    const auto t1 = pw.insert(1, 0);
    int fired = 0;
    pw.whenSlotFree([&] { ++fired; });
    pw.whenSlotFree([&] { ++fired; });
    EXPECT_EQ(fired, 0);
    pw.complete(t1);
    // The first waiter may refill the slot; here neither does, so both
    // run.
    EXPECT_EQ(fired, 2);
}

TEST(PendingWrites, SlotWaiterThatRefillsBlocksTheNext)
{
    PendingWrites pw(1);
    const auto t1 = pw.insert(1, 0);
    int second = 0;
    PendingWrites::Tag t2 = 0;
    pw.whenSlotFree([&] { t2 = pw.insert(2, 0); });
    pw.whenSlotFree([&] { ++second; });
    pw.complete(t1);
    EXPECT_EQ(second, 0); // first waiter took the slot
    pw.complete(t2);
    EXPECT_EQ(second, 1);
}

TEST(PendingWrites, WhenAddrClearWaitsForThatAddressOnly)
{
    PendingWrites pw(4);
    const auto ta = pw.insert(1, 0);
    const auto tb = pw.insert(1, 1);
    int fired = 0;
    pw.whenAddrClear(1, 0, [&] { ++fired; });
    pw.complete(tb);
    EXPECT_EQ(fired, 0);
    pw.complete(ta);
    EXPECT_EQ(fired, 1);
}

TEST(PendingWrites, DuplicateAddressesBothBlockReads)
{
    PendingWrites pw(4);
    const auto t1 = pw.insert(1, 0);
    const auto t2 = pw.insert(1, 0);
    int fired = 0;
    pw.whenAddrClear(1, 0, [&] { ++fired; });
    pw.complete(t1);
    EXPECT_EQ(fired, 0);
    pw.complete(t2);
    EXPECT_EQ(fired, 1);
}

TEST(PendingWrites, HighWaterMark)
{
    PendingWrites pw(8);
    for (int i = 0; i < 5; ++i) {
        pw.insert(1, i);
        pw.noteHighWater();
    }
    EXPECT_EQ(pw.maxInFlight(), 5u);
}

// --- DelayedOpCache -------------------------------------------------------------

TEST(DelayedOps, AllocateCompleteTake)
{
    DelayedOpCache cache(8);
    const auto h = cache.allocate(RmwOp::FetchAdd);
    EXPECT_FALSE(cache.ready(h));
    cache.complete(h, 42);
    EXPECT_TRUE(cache.ready(h));
    EXPECT_EQ(cache.take(h), 42u);
    EXPECT_EQ(cache.inFlight(), 0u);
}

TEST(DelayedOps, CapacityEnforced)
{
    DelayedOpCache cache(2);
    cache.allocate(RmwOp::Xchng);
    cache.allocate(RmwOp::Xchng);
    EXPECT_TRUE(cache.full());
    EXPECT_THROW(cache.allocate(RmwOp::Xchng), PanicError);
}

TEST(DelayedOps, WhenReadyFiresOnCompletion)
{
    DelayedOpCache cache(4);
    const auto h = cache.allocate(RmwOp::Queue);
    Word seen = 0;
    cache.whenReady(h, [&](Word v) { seen = v; });
    EXPECT_EQ(seen, 0u);
    cache.complete(h, 7);
    EXPECT_EQ(seen, 7u);
}

TEST(DelayedOps, WhenReadyImmediateIfReady)
{
    DelayedOpCache cache(4);
    const auto h = cache.allocate(RmwOp::Queue);
    cache.complete(h, 9);
    Word seen = 0;
    cache.whenReady(h, [&](Word v) { seen = v; });
    EXPECT_EQ(seen, 9u);
}

TEST(DelayedOps, SlotWaitersRunAfterTake)
{
    DelayedOpCache cache(1);
    const auto h = cache.allocate(RmwOp::Xchng);
    int fired = 0;
    cache.whenSlotFree([&] { ++fired; });
    cache.complete(h, 1);
    EXPECT_EQ(fired, 0); // still occupied until the result is read
    cache.take(h);
    EXPECT_EQ(fired, 1);
}

TEST(DelayedOps, HandlesAreReusedAfterTake)
{
    DelayedOpCache cache(2);
    const auto h1 = cache.allocate(RmwOp::Xchng);
    cache.complete(h1, 1);
    cache.take(h1);
    const auto h2 = cache.allocate(RmwOp::Xchng);
    EXPECT_EQ(h2, h1);
}

TEST(DelayedOps, TakeBeforeResultIsPanic)
{
    DelayedOpCache cache(2);
    const auto h = cache.allocate(RmwOp::Xchng);
    EXPECT_THROW(cache.take(h), PanicError);
}

} // namespace
} // namespace proto
} // namespace plus
