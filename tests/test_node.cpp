/**
 * @file
 * Node-assembly tests: the node bus wiring between coherence manager
 * and processor cache (snooping), delivery-handler registration, and
 * the interplay of cache timing with coherent updates.
 */

#include <gtest/gtest.h>

#include "core/context.hpp"
#include "core/machine.hpp"

namespace plus {
namespace core {
namespace {

MachineConfig
cfgFor(unsigned nodes)
{
    MachineConfig cfg;
    cfg.nodes = nodes;
    cfg.framesPerNode = 64;
    return cfg;
}

TEST(Node, SnoopFiresWhenManagerWritesLocalMemory)
{
    Machine m(cfgFor(2));
    const Addr page = m.alloc(kPageBytes, 1);
    // Node 1's processor caches the line, then node 0 writes through the
    // coherence protocol: the node-bus snoop must see it.
    m.spawn(1, [&](Context& ctx) {
        ctx.read(page); // line now cached on node 1
        // Wait until node 0's write lands.
        while (ctx.read(page) == 0) {
            ctx.pause(16);
        }
    });
    m.spawn(0, [&](Context& ctx) {
        ctx.compute(200);
        ctx.write(page, 5);
        ctx.fence();
    });
    m.run();
    EXPECT_GE(m.nodeAt(1).cache()->stats().snoopUpdates, 1u);
}

TEST(Node, CacheIsOptional)
{
    MachineConfig cfg = cfgFor(2);
    cfg.cost.modelCache = false;
    Machine m(cfg);
    EXPECT_EQ(m.nodeAt(0).cache(), nullptr);
    const Addr page = m.alloc(kPageBytes, 0);
    Word got = 0;
    m.spawn(0, [&](Context& ctx) {
        ctx.write(page, 3);
        got = ctx.read(page);
    });
    m.run();
    EXPECT_EQ(got, 3u);
}

TEST(Node, ComponentsAreWiredPerNode)
{
    Machine m(cfgFor(4));
    for (NodeId n = 0; n < 4; ++n) {
        EXPECT_EQ(m.nodeAt(n).id(), n);
        EXPECT_EQ(m.nodeAt(n).cm().nodeId(), n);
        EXPECT_EQ(m.nodeAt(n).processor().nodeId(), n);
        EXPECT_NE(m.nodeAt(n).refCounters(), nullptr);
    }
}

TEST(Node, RemoteUpdatesDoNotEvictWithUpdateSnooping)
{
    // The paper's write-update bus snoop keeps cached lines valid while
    // the manager updates local memory under them.
    Machine m(cfgFor(2));
    const Addr page = m.alloc(kPageBytes, 1);
    Cycles recheck_cost = 0;
    m.spawn(1, [&](Context& ctx) {
        ctx.read(page); // fill the line
        while (ctx.read(page) == 0) {
            ctx.pause(16);
        }
        // The line was updated, not invalidated: re-reading it is a hit.
        const Cycles t0 = ctx.machine().now();
        ctx.read(page);
        recheck_cost = ctx.machine().now() - t0;
    });
    m.spawn(0, [&](Context& ctx) {
        ctx.compute(100);
        ctx.write(page, 9);
    });
    m.run();
    EXPECT_EQ(recheck_cost, CostModel{}.cacheHit);
}

TEST(Node, WriteThroughKeepsMemoryAuthoritative)
{
    // Every processor store reaches local memory immediately (the cache
    // holds no dirty data), so a freshly replicated page carries it.
    Machine m(cfgFor(2));
    const Addr page = m.alloc(kPageBytes, 0);
    m.spawn(0, [&](Context& ctx) {
        ctx.write(page + 4, 77);
        ctx.fence();
        ctx.machine().replicate(page, 1);
    });
    m.run();
    m.settle();
    const PhysPage copy = *m.copyListOf(page).copyOn(1);
    EXPECT_EQ(m.nodeAt(1).memory().read(copy.frame, 1), 77u);
}

} // namespace
} // namespace core
} // namespace plus
