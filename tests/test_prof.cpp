/**
 * @file
 * The host-time profiler (plus::prof): off means free and silent, on
 * means per-thread exclusive-time attribution, a flight recorder that
 * rides along on every panic (including the watchdog's stall report),
 * JSON output with per-thread rollups, and — on the parallel backend —
 * per-window statistics and a barrier-wait breakdown for every worker.
 *
 * The profiler reads host clocks by design (it is PLUS_HOST_ONLY), so
 * these tests assert structure and ordering properties, never absolute
 * times: which phases recorded, who billed whom, what the dump and the
 * JSON contain.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <deque>
#include <sstream>
#include <string>
#include <vector>

#include "common/determinism.hpp"
#include "common/panic.hpp"
#include "core/context.hpp"
#include "plus/plus.hpp"
#include "telemetry/prof.hpp"

namespace plus {
namespace {

PLUS_HOST_ONLY("exercises the host-time profiler; asserts structure, "
               "not simulation state");

/** Burn host time so a scope has something to measure. */
void
spin(std::uint64_t iters)
{
    volatile std::uint64_t sink = 0;
    for (std::uint64_t i = 0; i < iters; ++i) {
        sink = sink + i;
    }
}

/** This thread's entry in a fresh collect(), or nullptr. */
const prof::Summary::Thread*
threadNamed(const prof::Summary& s, const std::string& label)
{
    for (const prof::Summary::Thread& t : s.threads) {
        if (t.label == label) {
            return &t;
        }
    }
    return nullptr;
}

std::uint64_t
countOf(const prof::Summary& s, prof::Phase phase)
{
    std::uint64_t n = 0;
    for (const prof::Summary::Thread& t : s.threads) {
        n += t.count[static_cast<std::size_t>(phase)];
    }
    return n;
}

TEST(Prof, DisabledScopesRecordNothing)
{
    prof::enable(false);
    prof::reset();
    {
        const prof::ScopedPhase scope(prof::Phase::ProtoHandle);
        spin(1000);
    }
    prof::noteWindow(4, 10, 2);
    prof::noteLookahead(7);
    const prof::Summary s = prof::collect();
    EXPECT_EQ(countOf(s, prof::Phase::ProtoHandle), 0u);
    EXPECT_EQ(s.windows, 0u);
    EXPECT_EQ(s.lookahead, 0u);
    EXPECT_TRUE(prof::flightRecorderDump().empty());
}

TEST(Prof, NestedScopesBillExclusiveTime)
{
    prof::enable(true);
    prof::reset();
    prof::setThreadLabel("t0");
    {
        const prof::ScopedPhase outer(prof::Phase::EngineRun);
        {
            const prof::ScopedPhase inner(prof::Phase::ProtoHandle);
            spin(2'000'000); // the inner scope does all the work
        }
    }
    const prof::Summary s = prof::collect();
    const prof::Summary::Thread* t = threadNamed(s, "t0");
    ASSERT_NE(t, nullptr);
    const auto outer_ix = static_cast<std::size_t>(prof::Phase::EngineRun);
    const auto inner_ix =
        static_cast<std::size_t>(prof::Phase::ProtoHandle);
    EXPECT_EQ(t->count[outer_ix], 1u);
    EXPECT_EQ(t->count[inner_ix], 1u);
    EXPECT_GT(t->ticks[inner_ix], 0u);
    // Exclusive accounting: the busy-wait belongs to the inner phase,
    // so the outer phase keeps only its own (tiny) share.
    EXPECT_LT(t->ticks[outer_ix], t->ticks[inner_ix]);
}

TEST(Prof, WindowStatsAggregate)
{
    prof::enable(true);
    prof::reset();
    prof::noteLookahead(3);
    prof::noteWindow(4, 10, 2);
    prof::noteWindow(2, 0, 0);
    prof::noteWindow(6, 5, 1);
    const prof::Summary s = prof::collect();
    EXPECT_EQ(s.lookahead, 3u);
    EXPECT_EQ(s.windows, 3u);
    EXPECT_EQ(s.windowWidthSum, 12u);
    EXPECT_EQ(s.windowWidthMin, 2u);
    EXPECT_EQ(s.windowWidthMax, 6u);
    EXPECT_EQ(s.windowEventsSum, 15u);
    EXPECT_EQ(s.windowEventsMin, 0u);
    EXPECT_EQ(s.windowEventsMax, 10u);
    EXPECT_EQ(s.windowMailSum, 3u);
}

TEST(Prof, FlightRecorderKeepsRecentScopes)
{
    prof::enable(true);
    prof::reset();
    for (int i = 0; i < 3; ++i) {
        const prof::ScopedPhase scope(prof::Phase::NetDeliver);
        spin(100);
    }
    const std::string dump = prof::flightRecorderDump();
    EXPECT_NE(dump.find("prof flight recorder"), std::string::npos)
        << dump;
    EXPECT_NE(dump.find("net.deliver"), std::string::npos) << dump;
}

TEST(Prof, PanicCarriesTheFlightRecorder)
{
    prof::enable(true);
    prof::reset();
    {
        const prof::ScopedPhase scope(prof::Phase::ProcDispatch);
        spin(100);
    }
    try {
        PLUS_PANIC("prof test panic");
        FAIL() << "PLUS_PANIC returned";
    } catch (const PanicError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("prof test panic"), std::string::npos);
        EXPECT_NE(what.find("prof flight recorder"), std::string::npos)
            << what;
        EXPECT_NE(what.find("proc.dispatch"), std::string::npos) << what;
    }
}

TEST(Prof, WriteJsonEmitsRollupAndWindows)
{
    prof::enable(true);
    prof::reset();
    prof::noteLookahead(2);
    prof::noteWindow(4, 8, 1);
    {
        const prof::ScopedPhase work(prof::Phase::ParWork);
        spin(10'000);
    }
    {
        const prof::ScopedPhase wait(prof::Phase::ParBarrier);
        spin(10'000);
    }
    std::ostringstream os;
    prof::writeJson(os);
    const std::string json = os.str();
    for (const char* key :
         {"\"enabled\":true", "\"ticksPerSec\"", "\"runWallNs\"",
          "\"lookahead\":2", "\"windows\"", "\"count\":1", "\"threads\"",
          "\"par.work\"", "\"par.barrier\"", "\"rollup\"", "\"workPct\"",
          "\"barrierPct\"", "\"drainPct\"", "\"otherPct\""}) {
        EXPECT_NE(json.find(key), std::string::npos)
            << "missing " << key << " in: " << json;
    }
}

TEST(Prof, RollupCoversTheWholeWall)
{
    prof::Summary::Thread t;
    t.ticks[static_cast<std::size_t>(prof::Phase::ParWork)] = 400;
    t.ticks[static_cast<std::size_t>(prof::Phase::ParBarrier)] = 500;
    t.ticks[static_cast<std::size_t>(prof::Phase::ParDrain)] = 50;
    const prof::Rollup r = prof::rollupOf(t, 1000);
    EXPECT_NEAR(r.workPct, 40.0, 1e-9);
    EXPECT_NEAR(r.barrierPct, 50.0, 1e-9);
    EXPECT_NEAR(r.drainPct, 5.0, 1e-9);
    EXPECT_NEAR(r.otherPct, 5.0, 1e-9);
    EXPECT_NEAR(r.workPct + r.barrierPct + r.drainPct + r.otherPct, 100.0,
                1e-9);
}

/** The sim_harness mixed workload, shrunk to unit-test size. */
void
runSmallHarness(Engine backend, unsigned threads)
{
    constexpr unsigned kNodes = 8;
    auto machine_ptr = MachineBuilder()
                           .nodes(kNodes)
                           .framesPerNode(64)
                           .engine(backend)
                           .threads(threads)
                           .build();
    core::Machine& m = *machine_ptr;
    std::vector<Addr> pages(kNodes);
    for (NodeId n = 0; n < kNodes; ++n) {
        pages[n] = m.alloc(kPageBytes, n);
        m.replicate(pages[n], (n + 1) % kNodes);
    }
    m.settle();
    for (NodeId n = 0; n < kNodes; ++n) {
        m.spawn(n, [&pages, n](core::Context& ctx) {
            for (Word i = 0; i < 8; ++i) {
                ctx.write(pages[n] + 4 * (i % 8), n * 100 + i);
                ctx.read(pages[(n + 1) % kNodes] + 4 * (i % 8));
                ctx.compute(15);
            }
            ctx.fence();
        });
    }
    m.run();
}

TEST(Prof, ParallelRunProducesPerThreadBreakdown)
{
    prof::enable(true);
    prof::reset();
    runSmallHarness(Engine::Parallel, 2);
    const prof::Summary s = prof::collect();

    // The coordinator relabels itself and one worker thread spins up.
    const prof::Summary::Thread* coord = threadNamed(s, "coord");
    const prof::Summary::Thread* worker = threadNamed(s, "worker1");
    ASSERT_NE(coord, nullptr);
    ASSERT_NE(worker, nullptr);
    const auto barrier_ix =
        static_cast<std::size_t>(prof::Phase::ParBarrier);
    const auto work_ix = static_cast<std::size_t>(prof::Phase::ParWork);
    EXPECT_GT(coord->count[barrier_ix], 0u);
    EXPECT_GT(coord->count[work_ix], 0u);
    EXPECT_GT(worker->count[barrier_ix], 0u);
    EXPECT_GT(worker->count[work_ix], 0u);

    // Conservative windows were measured.
    EXPECT_GT(s.windows, 0u);
    EXPECT_GT(s.windowEventsSum, 0u);
    EXPECT_GE(s.lookahead, 1u);

    // Every thread's rollup attributes the full wall clock.
    for (const prof::Summary::Thread& t : s.threads) {
        const prof::Rollup r = prof::rollupOf(t, s.runWallTicks);
        EXPECT_NEAR(r.workPct + r.barrierPct + r.drainPct + r.otherPct,
                    100.0, 0.01)
            << t.label;
    }
    prof::enable(false);
}

TEST(Prof, WatchdogStallDumpIncludesFlightRecorder)
{
    // A permanent partition with unlimited retransmits: only the
    // watchdog can diagnose the hang, and with profiling on its panic
    // must carry the per-thread flight recorder.
    setenv("PLUS_ENGINE", "wheel", 1);
    prof::enable(true);
    prof::reset();
    MachineConfig cfg;
    cfg.nodes = 4;
    cfg.network.fault.enabled = true;
    cfg.network.fault.maxRetransmits = 0;
    cfg.network.fault.script.push_back(
        {1, FaultScriptEntry::Kind::LinkDown, 0, 1});
    cfg.watchdog.enabled = true;
    cfg.watchdog.windowCycles = 1u << 15;
    core::Machine m(cfg);
    const Addr a = m.alloc(8, 0); // homed on node 0
    m.spawn(1, [&](core::Context& ctx) { ctx.read(a); });
    try {
        m.run();
        FAIL() << "expected the watchdog to panic";
    } catch (const PanicError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("watchdog"), std::string::npos) << what;
        EXPECT_NE(what.find("prof flight recorder"), std::string::npos)
            << what;
        // The stalled run still dispatched processor work before
        // hanging; its phase records are in the dump.
        EXPECT_NE(what.find("proc.dispatch"), std::string::npos) << what;
    }
    prof::enable(false);
    unsetenv("PLUS_ENGINE");
}

} // namespace
} // namespace plus
