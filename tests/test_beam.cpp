/**
 * @file
 * Correctness tests for the beam-search workload across the three
 * latency-hiding variants of Figure 3-1 (blocking, delayed operations,
 * context switching).
 */

#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "workloads/beam.hpp"

namespace plus {
namespace workloads {
namespace {

MachineConfig
cfgFor(unsigned nodes, ProcessorMode mode,
       Cycles ctx_switch = 40)
{
    MachineConfig cfg;
    cfg.nodes = nodes;
    cfg.framesPerNode = 512;
    cfg.mode = mode;
    cfg.cost.ctxSwitchCycles = ctx_switch;
    return cfg;
}

BeamConfig
smallBeam()
{
    BeamConfig cfg;
    cfg.layers = 10;
    cfg.width = 32;
    cfg.avgDegree = 2.5;
    cfg.seed = 5;
    return cfg;
}

TEST(Beam, ReferenceOnTinyGraph)
{
    // Two layers of two states: 0 -> {2, 3}.
    Graph g(4);
    g.addEdge(0, 2, 4);
    g.addEdge(0, 3, 9);
    g.seal();
    const auto ref = beamReference(g, 2, 2);
    ASSERT_EQ(ref.size(), 2u);
    EXPECT_EQ(ref[0], 4u);
    EXPECT_EQ(ref[1], 9u);
}

TEST(Beam, SingleNodeBlockingMatchesReference)
{
    core::Machine m(cfgFor(1, ProcessorMode::Blocking));
    EXPECT_TRUE(runBeam(m, smallBeam()).correct);
}

TEST(Beam, FourNodesDelayedMatchesReference)
{
    core::Machine m(cfgFor(4, ProcessorMode::Delayed));
    EXPECT_TRUE(runBeam(m, smallBeam()).correct);
}

TEST(Beam, ContextSwitchModeMatchesReference)
{
    core::Machine m(cfgFor(4, ProcessorMode::ContextSwitch, 40));
    BeamConfig cfg = smallBeam();
    cfg.threadsPerProcessor = 3;
    EXPECT_TRUE(runBeam(m, cfg).correct);
}

struct BeamParam {
    unsigned nodes;
    ProcessorMode mode;
    unsigned threads;
};

class BeamSweep : public ::testing::TestWithParam<BeamParam>
{
};

TEST_P(BeamSweep, MatchesReference)
{
    const BeamParam p = GetParam();
    core::Machine m(cfgFor(p.nodes, p.mode));
    BeamConfig cfg = smallBeam();
    cfg.threadsPerProcessor = p.threads;
    const BeamResult r = runBeam(m, cfg);
    EXPECT_TRUE(r.correct);
    EXPECT_GT(r.expansions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndNodes, BeamSweep,
    ::testing::Values(
        BeamParam{1, ProcessorMode::Blocking, 1},
        BeamParam{2, ProcessorMode::Blocking, 1},
        BeamParam{8, ProcessorMode::Blocking, 1},
        BeamParam{1, ProcessorMode::Delayed, 1},
        BeamParam{2, ProcessorMode::Delayed, 1},
        BeamParam{8, ProcessorMode::Delayed, 1},
        BeamParam{2, ProcessorMode::ContextSwitch, 2},
        BeamParam{4, ProcessorMode::ContextSwitch, 4},
        BeamParam{8, ProcessorMode::ContextSwitch, 2}),
    [](const ::testing::TestParamInfo<BeamParam>& info) {
        return "n" + std::to_string(info.param.nodes) + "_" +
               std::string(toString(info.param.mode) ==
                                   std::string("context-switch")
                               ? "ctx"
                               : toString(info.param.mode)) +
               "_t" + std::to_string(info.param.threads);
    });

TEST(Beam, PrunedSearchStaysSane)
{
    core::Machine m(cfgFor(4, ProcessorMode::Delayed));
    BeamConfig cfg = smallBeam();
    cfg.beamMargin = 40;
    const BeamResult r = runBeam(m, cfg);
    EXPECT_TRUE(r.correct); // no score below the exact optimum
}

TEST(Beam, DelayedModeBeatsBlockingOnWallClock)
{
    // The headline claim of Section 3: hiding synchronization latency
    // with delayed operations speeds up the sync-heavy inner loop.
    BeamConfig cfg = smallBeam();
    cfg.layers = 12;
    cfg.width = 48;

    core::Machine blocking(cfgFor(8, ProcessorMode::Blocking));
    const BeamResult rb = runBeam(blocking, cfg);

    core::Machine delayed(cfgFor(8, ProcessorMode::Delayed));
    const BeamResult rd = runBeam(delayed, cfg);

    ASSERT_TRUE(rb.correct);
    ASSERT_TRUE(rd.correct);
    EXPECT_LT(rd.elapsed, rb.elapsed);
}

class BeamMarginSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(BeamMarginSweep, TighterBeamExpandsFewerStates)
{
    // The pruning margin trades work for exactness: every margin must
    // stay sane (never beat the exact optimum), and the expansion count
    // must not grow as the beam narrows.
    core::Machine m(cfgFor(4, ProcessorMode::Delayed));
    BeamConfig cfg = smallBeam();
    cfg.beamMargin = GetParam();
    const BeamResult r = runBeam(m, cfg);
    EXPECT_TRUE(r.correct);
}

INSTANTIATE_TEST_SUITE_P(Margins, BeamMarginSweep,
                         ::testing::Values(10u, 30u, 100u, kInfDist),
                         [](const ::testing::TestParamInfo<std::uint32_t>&
                                info) {
                             return info.param == kInfDist
                                        ? std::string("exact")
                                        : "m" + std::to_string(info.param);
                         });

TEST(Beam, NarrowBeamDoesLessWorkThanExact)
{
    BeamConfig cfg = smallBeam();
    cfg.layers = 12;
    cfg.width = 64;

    core::Machine exact_m(cfgFor(4, ProcessorMode::Delayed));
    cfg.beamMargin = kInfDist;
    const BeamResult exact = runBeam(exact_m, cfg);

    core::Machine pruned_m(cfgFor(4, ProcessorMode::Delayed));
    cfg.beamMargin = 8;
    const BeamResult pruned = runBeam(pruned_m, cfg);

    ASSERT_TRUE(exact.correct);
    ASSERT_TRUE(pruned.correct);
    EXPECT_LT(pruned.expansions, exact.expansions);
}

} // namespace
} // namespace workloads
} // namespace plus
