/**
 * @file
 * Unit tests for the interconnection-network models: zero-load latency
 * calibration (24-cycle adjacent round trip, +4 per extra hop), link
 * serialization and queueing under contention, per-route FIFO ordering
 * (which the page-copy protocol depends on), and statistics.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.hpp"
#include "sim/engine.hpp"

namespace plus {
namespace net {
namespace {

struct Delivery {
    NodeId dst;
    Cycles at;
    unsigned bytes;
};

class NetworkTest : public ::testing::Test
{
  protected:
    void
    build(bool ideal, unsigned nodes = 16, unsigned width = 4)
    {
        NetworkConfig cfg;
        cfg.ideal = ideal;
        topology_ = std::make_unique<Topology>(nodes, width,
                                               (nodes + width - 1) /
                                                   width);
        network_ = makeNetwork(engine_, *topology_, cfg);
        for (NodeId n = 0; n < nodes; ++n) {
            network_->setDeliveryHandler(n, [this, n](Packet p) {
                log_.push_back({n, engine_.now(), p.payloadBytes});
            });
        }
    }

    void
    send(NodeId src, NodeId dst, unsigned bytes = 8)
    {
        Packet p;
        p.src = src;
        p.dst = dst;
        p.payloadBytes = bytes;
        network_->send(std::move(p));
    }

    sim::Engine engine_;
    std::unique_ptr<Topology> topology_;
    std::unique_ptr<Network> network_;
    std::vector<Delivery> log_;
};

TEST_F(NetworkTest, IdealOneWayLatencyFormula)
{
    build(true);
    send(0, 1); // 1 hop
    send(0, 5); // 2 hops
    send(0, 15); // 6 hops
    engine_.run();
    ASSERT_EQ(log_.size(), 3u);
    EXPECT_EQ(log_[0].at, 10u + 2 * 1);
    EXPECT_EQ(log_[1].at, 10u + 2 * 2);
    EXPECT_EQ(log_[2].at, 10u + 2 * 6);
}

TEST_F(NetworkTest, MeshZeroLoadMatchesIdeal)
{
    build(false);
    send(0, 1);
    engine_.run();
    ASSERT_EQ(log_.size(), 1u);
    // One-way 12 cycles => the paper's 24-cycle adjacent round trip.
    EXPECT_EQ(log_[0].at, 12u);
}

TEST_F(NetworkTest, MeshExtraHopAddsTwoCyclesOneWay)
{
    build(false);
    send(0, 2);
    engine_.run();
    EXPECT_EQ(log_[0].at, 10u + 2 * 2); // +4 per extra hop round trip
}

TEST_F(NetworkTest, ContentionQueuesBehindBusyLink)
{
    build(false);
    // Two messages injected back-to-back over the same link: the second
    // waits for the first's serialization time.
    send(0, 1, 8);
    send(0, 1, 8);
    engine_.run();
    ASSERT_EQ(log_.size(), 2u);
    EXPECT_EQ(log_[0].at, 12u);
    // Serialization of (8 header + 8 payload) bytes at 0.8 B/cycle = 20.
    EXPECT_EQ(log_[1].at, 12u + 20u);
    EXPECT_GT(network_->queueingHistogram().max(), 0.0);
}

TEST_F(NetworkTest, DisjointRoutesDoNotInterfere)
{
    build(false);
    send(0, 1);
    send(4, 5);
    engine_.run();
    ASSERT_EQ(log_.size(), 2u);
    EXPECT_EQ(log_[0].at, 12u);
    EXPECT_EQ(log_[1].at, 12u);
}

TEST_F(NetworkTest, SameRouteIsFifo)
{
    build(false);
    // The coherence protocol relies on per-(src,dst) FIFO delivery.
    for (unsigned i = 0; i < 20; ++i) {
        send(0, 15, 4 + 4 * (i % 3));
    }
    engine_.run();
    ASSERT_EQ(log_.size(), 20u);
    for (unsigned i = 0; i + 1 < 20; ++i) {
        EXPECT_LE(log_[i].at, log_[i + 1].at);
        EXPECT_EQ(log_[i].bytes, 4 + 4 * (i % 3));
    }
}

TEST_F(NetworkTest, StatsCountPacketsHopsAndBytes)
{
    build(false);
    send(0, 1, 8);
    send(0, 5, 16);
    engine_.run();
    const NetworkStats s = network_->stats();
    EXPECT_EQ(s.packets, 2u);
    EXPECT_EQ(s.payloadBytes, 24u);
    EXPECT_EQ(s.totalHops, 3u);
    EXPECT_EQ(network_->latencyHistogram().count(), 2u);
}

TEST_F(NetworkTest, SerializationRoundsUp)
{
    build(false);
    // 8 header + 1 payload = 9 bytes at 0.8 B/cycle = 11.25 -> 12.
    EXPECT_EQ(network_->serializationCycles(1), 12u);
    EXPECT_EQ(network_->serializationCycles(0), 10u);
}

TEST_F(NetworkTest, SelfSendIsRejected)
{
    build(false);
    Packet p;
    p.src = 3;
    p.dst = 3;
    EXPECT_THROW(network_->send(std::move(p)), PanicError);
}

TEST_F(NetworkTest, ManyRandomMessagesAllArrive)
{
    build(false);
    unsigned sent = 0;
    for (NodeId s = 0; s < 16; ++s) {
        for (NodeId d = 0; d < 16; ++d) {
            if (s != d) {
                send(s, d, (s * 16 + d) % 32);
                ++sent;
            }
        }
    }
    engine_.run();
    EXPECT_EQ(log_.size(), sent);
}

TEST_F(NetworkTest, MaxLinkBusyTracksHotLink)
{
    build(false);
    auto* mesh = dynamic_cast<MeshNetwork*>(network_.get());
    ASSERT_NE(mesh, nullptr);
    for (int i = 0; i < 10; ++i) {
        send(0, 1, 8);
    }
    engine_.run();
    EXPECT_EQ(mesh->maxLinkBusyCycles(), 10 * 20u);
}

} // namespace
} // namespace net
} // namespace plus
