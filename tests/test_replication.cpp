/**
 * @file
 * Tests for the page replication machinery of Sections 2.3/2.4: the
 * background copy engine overlapped with concurrent writes, copy-list
 * growth, page-table switching, online migration and deletion (splice +
 * frame-flush), the nack/retry path for requests racing a deletion, and
 * the hardware-assisted competitive replication policy.
 */

#include <gtest/gtest.h>

#include "core/context.hpp"
#include "core/machine.hpp"

namespace plus {
namespace core {
namespace {

MachineConfig
cfgFor(unsigned nodes)
{
    MachineConfig cfg;
    cfg.nodes = nodes;
    cfg.framesPerNode = 64;
    return cfg;
}

TEST(Replication, CopyCarriesExistingData)
{
    Machine m(cfgFor(4));
    const Addr page = m.alloc(kPageBytes, 0);
    for (Word i = 0; i < 64; ++i) {
        m.poke(page + 4 * i, 1000 + i);
    }
    m.replicate(page, 3);
    m.settle();
    ASSERT_EQ(m.copyListOf(page).size(), 2u);
    // Inspect the replica's frame directly.
    const PhysPage copy = *m.copyListOf(page).copyOn(3);
    for (Word i = 0; i < 64; ++i) {
        EXPECT_EQ(m.nodeAt(3).memory().read(copy.frame, i), 1000 + i);
    }
}

TEST(Replication, ReplicateIsIdempotent)
{
    Machine m(cfgFor(4));
    const Addr page = m.alloc(kPageBytes, 0);
    m.replicate(page, 2);
    m.replicate(page, 2);
    m.settle();
    m.replicate(page, 2);
    EXPECT_EQ(m.copyListOf(page).size(), 2u);
}

TEST(Replication, WritesDuringCopyReachTheNewCopy)
{
    // "The copy operation can be overlapped with writes to the same page
    // by any processor in the system, without destroying the page
    // integrity."
    Machine m(cfgFor(4));
    const Addr page = m.alloc(kPageBytes, 0);
    for (Word i = 0; i < kPageWords; ++i) {
        m.poke(page + 4 * i, 5);
    }

    // Writer hammers the page while the copy to node 3 is in flight.
    m.spawn(1, [&](Context& ctx) {
        ctx.machine().replicate(page, 3);
        for (Word round = 0; round < 8; ++round) {
            for (Word i = 0; i < 64; ++i) {
                ctx.write(page + 4 * (i * 16), 100 + round);
            }
            ctx.fence();
        }
    });
    m.run();
    m.settle();

    ASSERT_EQ(m.copyListOf(page).size(), 2u);
    const PhysPage master = m.copyListOf(page).master();
    const PhysPage copy = *m.copyListOf(page).copyOn(3);
    for (Word i = 0; i < kPageWords; ++i) {
        EXPECT_EQ(m.nodeAt(copy.node).memory().read(copy.frame, i),
                  m.nodeAt(master.node).memory().read(master.frame, i))
            << "word " << i << " diverged between master and new copy";
    }
}

TEST(Replication, ReaderSwitchesToLocalCopyAfterCompletion)
{
    Machine m(cfgFor(4));
    const Addr page = m.alloc(kPageBytes, 0);
    m.poke(page, 7);
    m.replicate(page, 2);
    m.settle();
    Word value = 0;
    m.spawn(2, [&](Context& ctx) { value = ctx.read(page); });
    m.run();
    EXPECT_EQ(value, 7u);
    // The reader's page table must now map the local copy.
    EXPECT_EQ(m.nodeAt(2).pageTable().lookup(pageOf(page))->node, 2u);
    EXPECT_EQ(m.nodeAt(2).cm().stats().localReads, 1u);
}

TEST(Replication, UpdatesFlowThroughWholeChain)
{
    Machine m(cfgFor(9));
    const Addr page = m.alloc(kPageBytes, 4);
    for (NodeId n = 0; n < 9; ++n) {
        if (n != 4) {
            m.replicate(page, n);
        }
    }
    m.settle();
    ASSERT_EQ(m.copyListOf(page).size(), 9u);

    m.spawn(7, [&](Context& ctx) {
        ctx.write(page + 40, 1234);
        ctx.fence();
    });
    m.run();

    for (const PhysPage& copy : m.copyListOf(page).copies()) {
        EXPECT_EQ(m.nodeAt(copy.node).memory().read(copy.frame, 10),
                  1234u)
            << "copy on node " << copy.node;
    }
}

TEST(Replication, DeleteCopyFreesFrameAndSplicesChain)
{
    Machine m(cfgFor(4));
    const Addr page = m.alloc(kPageBytes, 0);
    m.replicate(page, 1);
    m.replicate(page, 2);
    m.settle();
    ASSERT_EQ(m.copyListOf(page).size(), 3u);
    const unsigned frames_before = m.nodeAt(1).memory().framesInUse();

    m.deleteCopy(page, 1);
    m.settle();
    EXPECT_EQ(m.copyListOf(page).size(), 2u);
    EXPECT_FALSE(m.copyListOf(page).hasCopyOn(1));
    EXPECT_EQ(m.nodeAt(1).memory().framesInUse(), frames_before - 1);

    // Writes still reach the remaining copies.
    m.poke(page, 0);
    m.spawn(3, [&](Context& ctx) {
        ctx.write(page, 55);
        ctx.fence();
    });
    m.run();
    EXPECT_EQ(m.peek(page), 55u);
    const PhysPage tail = *m.copyListOf(page).copyOn(2);
    EXPECT_EQ(m.nodeAt(2).memory().read(tail.frame, 0), 55u);
}

TEST(Replication, DeletingMasterIsRefused)
{
    Machine m(cfgFor(2));
    const Addr page = m.alloc(kPageBytes, 0);
    m.replicate(page, 1);
    m.settle();
    EXPECT_THROW(m.deleteCopy(page, 0), PanicError);
}

TEST(Replication, DeletingOnlyCopyIsRefused)
{
    Machine m(cfgFor(2));
    const Addr page = m.alloc(kPageBytes, 0);
    EXPECT_THROW(m.deleteCopy(page, 0), PanicError);
}

TEST(Replication, MigrationMovesNonMasterCopy)
{
    Machine m(cfgFor(4));
    const Addr page = m.alloc(kPageBytes, 0);
    m.replicate(page, 1);
    m.settle();
    m.migrate(page, 1, 3);
    m.settle();
    EXPECT_EQ(m.copyListOf(page).size(), 2u);
    EXPECT_FALSE(m.copyListOf(page).hasCopyOn(1));
    EXPECT_TRUE(m.copyListOf(page).hasCopyOn(3));
}

TEST(Replication, RacingReadersRetryAfterDeletion)
{
    // A reader whose stale mapping points at a deleted copy is nacked,
    // re-translated, and retried transparently.
    Machine m(cfgFor(4));
    const Addr page = m.alloc(kPageBytes, 0);
    m.poke(page, 99);
    m.replicate(page, 1);
    m.settle();

    // Warm node 3's mapping so it points at some copy.
    m.spawn(3, [&](Context& ctx) {
        EXPECT_EQ(ctx.read(page), 99u);
        // Delete whichever copy node 3 mapped, mid-run, if it mapped
        // the replica (the master cannot be deleted).
        if (ctx.machine().nodeAt(3).pageTable().lookup(
                pageOf(page))->node == 1) {
            ctx.machine().deleteCopy(page, 1);
        } else {
            // Mapped the master: force the test by deleting the replica
            // anyway and re-pointing our mapping at it artificially.
            ctx.machine().nodeAt(3).pageTable().install(
                pageOf(page), PhysPage{1, m.copyListOf(page)
                                              .copyOn(1)
                                              ->frame});
            ctx.machine().deleteCopy(page, 1);
        }
        // The shootdown invalidated our mapping; to exercise the nack we
        // re-install the stale translation by hand (simulating a racing
        // in-flight request).
        ctx.machine().nodeAt(3).pageTable().install(pageOf(page),
                                                    PhysPage{1, 0});
        EXPECT_EQ(ctx.read(page), 99u); // nacked, retried, still correct
    });
    m.run();
    EXPECT_GE(m.nodeAt(3).cm().stats().retries, 1u);
}

TEST(Replication, RacingWritesRetryAfterDeletion)
{
    Machine m(cfgFor(4));
    const Addr page = m.alloc(kPageBytes, 0);
    m.replicate(page, 1);
    m.settle();
    const PhysPage stale = *m.copyListOf(page).copyOn(1);

    m.spawn(3, [&](Context& ctx) {
        ctx.read(page); // warm mapping
        ctx.machine().deleteCopy(page, 1);
        // Reinstate a stale mapping to the deleted copy and write.
        ctx.machine().nodeAt(3).pageTable().install(pageOf(page), stale);
        ctx.write(page + 8, 321);
        ctx.fence();
    });
    m.run();
    EXPECT_EQ(m.peek(page + 8), 321u);
}

TEST(Replication, CompetitiveReplicationCreatesLocalCopy)
{
    // Section 2.4's third policy: hardware reference counters overflow
    // and the OS replicates the hot page locally.
    Machine m(cfgFor(4));
    const Addr page = m.alloc(kPageBytes, 0);
    m.poke(page, 42);
    m.enableCompetitiveReplication(/*threshold=*/32, /*max_copies=*/3);

    m.spawn(3, [&](Context& ctx) {
        for (int i = 0; i < 200; ++i) {
            EXPECT_EQ(ctx.read(page), 42u);
            ctx.compute(20);
        }
    });
    m.run();
    m.settle();
    EXPECT_TRUE(m.copyListOf(page).hasCopyOn(3));
    // And the budget is respected even with more hot readers.
    EXPECT_LE(m.copyListOf(page).size(), 3u);
}

TEST(Replication, CompetitiveReplicationRespectsCopyBudget)
{
    Machine m(cfgFor(8));
    const Addr page = m.alloc(kPageBytes, 0);
    m.enableCompetitiveReplication(16, 3);
    for (NodeId n = 1; n < 8; ++n) {
        m.spawn(n, [&](Context& ctx) {
            for (int i = 0; i < 100; ++i) {
                ctx.read(page);
                ctx.compute(10);
            }
        });
    }
    m.run();
    m.settle();
    EXPECT_LE(m.copyListOf(page).size(), 3u);
    EXPECT_GE(m.copyListOf(page).size(), 2u);
}

TEST(Replication, OutOfMemoryOnTargetIsFatal)
{
    MachineConfig cfg = cfgFor(2);
    cfg.framesPerNode = 1;
    Machine m(cfg);
    const Addr a = m.alloc(kPageBytes, 1); // node 1's only frame
    const Addr b = m.alloc(kPageBytes, 0);
    (void)a;
    EXPECT_THROW(m.replicate(b, 1), FatalError);
}

TEST(Replication, PendingCopiesCounterTracksProgress)
{
    Machine m(cfgFor(4));
    const Addr page = m.alloc(kPageBytes, 0);
    EXPECT_EQ(m.pendingPageCopies(), 0u);
    m.replicate(page, 1);
    EXPECT_EQ(m.pendingPageCopies(), 1u);
    m.settle();
    EXPECT_EQ(m.pendingPageCopies(), 0u);
}

TEST(Replication, ReorderCopyListShortensChainAndStaysCoherent)
{
    Machine m(cfgFor(16));
    const Addr page = m.alloc(kPageBytes, 0);
    // Deliberately scattered placement.
    for (NodeId n : {15u, 3u, 12u, 5u}) {
        m.replicate(page, n);
        m.settle();
    }
    const net::Topology& topo = m.network().topology();
    const unsigned before = m.copyListOf(page).pathLength(topo);
    m.reorderCopyListQuiesced(page);
    const unsigned after = m.copyListOf(page).pathLength(topo);
    EXPECT_LE(after, before);
    EXPECT_EQ(m.copyListOf(page).master().node, 0u);

    // Writes still reach every copy through the rewired chain.
    m.spawn(7, [&](Context& ctx) {
        ctx.write(page + 16, 4242);
        ctx.fence();
    });
    m.run();
    for (const PhysPage& copy : m.copyListOf(page).copies()) {
        EXPECT_EQ(m.nodeAt(copy.node).memory().read(copy.frame, 4),
                  4242u);
    }
}

} // namespace
} // namespace core
} // namespace plus
