/**
 * @file
 * Unit tests for the mesh topology: coordinates, distances, and
 * dimension-order routing including partially filled meshes.
 */

#include <gtest/gtest.h>

#include "net/topology.hpp"

namespace plus {
namespace net {
namespace {

TEST(Topology, CoordinatesRoundTrip)
{
    Topology topo(16, 4, 4);
    for (NodeId n = 0; n < 16; ++n) {
        EXPECT_EQ(topo.nodeAt(topo.coordOf(n)), n);
    }
}

TEST(Topology, CoordLayoutIsRowMajor)
{
    Topology topo(16, 4, 4);
    EXPECT_EQ(topo.coordOf(0), (Coord{0, 0}));
    EXPECT_EQ(topo.coordOf(3), (Coord{3, 0}));
    EXPECT_EQ(topo.coordOf(4), (Coord{0, 1}));
    EXPECT_EQ(topo.coordOf(15), (Coord{3, 3}));
}

TEST(Topology, ManhattanDistance)
{
    Topology topo(16, 4, 4);
    EXPECT_EQ(topo.distance(0, 0), 0u);
    EXPECT_EQ(topo.distance(0, 1), 1u);
    EXPECT_EQ(topo.distance(0, 4), 1u);
    EXPECT_EQ(topo.distance(0, 5), 2u);
    EXPECT_EQ(topo.distance(0, 15), 6u);
    EXPECT_EQ(topo.distance(3, 12), 6u);
}

TEST(Topology, DistanceIsSymmetric)
{
    Topology topo(11, 4, 3);
    for (NodeId a = 0; a < 11; ++a) {
        for (NodeId b = 0; b < 11; ++b) {
            EXPECT_EQ(topo.distance(a, b), topo.distance(b, a));
        }
    }
}

TEST(Topology, RouteLengthEqualsDistance)
{
    Topology topo(16, 4, 4);
    for (NodeId a = 0; a < 16; ++a) {
        for (NodeId b = 0; b < 16; ++b) {
            if (a == b) {
                continue;
            }
            const auto path = topo.route(a, b);
            EXPECT_EQ(path.size(), topo.distance(a, b));
            EXPECT_EQ(path.back(), b);
        }
    }
}

TEST(Topology, RouteHopsAreAdjacent)
{
    Topology topo(16, 4, 4);
    const auto path = topo.route(0, 15);
    NodeId at = 0;
    for (NodeId next : path) {
        EXPECT_EQ(topo.distance(at, next), 1u);
        at = next;
    }
}

TEST(Topology, PartialLastRowRoutesStayOnMesh)
{
    // 7 nodes on a 3x3 mesh: node 6 is alone on the last row.
    Topology topo(7, 3, 3);
    for (NodeId a = 0; a < 7; ++a) {
        for (NodeId b = 0; b < 7; ++b) {
            if (a == b) {
                continue;
            }
            const auto path = topo.route(a, b);
            // Every hop must exist and the route must stay minimal.
            EXPECT_EQ(path.size(), topo.distance(a, b));
            NodeId at = a;
            for (NodeId next : path) {
                EXPECT_LT(next, 7u);
                EXPECT_EQ(topo.distance(at, next), 1u);
                at = next;
            }
        }
    }
}

TEST(Topology, ExistsChecksBounds)
{
    Topology topo(7, 3, 3);
    EXPECT_TRUE(topo.exists(Coord{0, 2}));
    EXPECT_FALSE(topo.exists(Coord{1, 2}));
    EXPECT_FALSE(topo.exists(Coord{3, 0}));
}

TEST(Topology, SingleNodeMesh)
{
    Topology topo(1, 1, 1);
    EXPECT_EQ(topo.distance(0, 0), 0u);
}

} // namespace
} // namespace net
} // namespace plus
