/**
 * @file
 * The plus::MachineBuilder facade: every knob must land in the built
 * machine's configuration, the faults()/watchdog() conveniences must
 * flip the corresponding enable bits, and the deprecated direct
 * MachineConfig constructor must produce a byte-identical machine so
 * existing callers can migrate without a behavior change.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/context.hpp"
#include "plus/plus.hpp"

namespace plus {
namespace {

TEST(Builder, KnobsReachConfig)
{
    const MachineBuilder b = MachineBuilder()
                                 .nodes(8)
                                 .framesPerNode(64)
                                 .mode(ProcessorMode::ContextSwitch)
                                 .engine(Engine::Heap)
                                 .threads(2)
                                 .seed(99)
                                 .meshWidth(4)
                                 .invariants(false)
                                 .races(true, true)
                                 .observer(true);
    const MachineConfig& c = b.config();
    EXPECT_EQ(c.nodes, 8u);
    EXPECT_EQ(c.framesPerNode, 64u);
    EXPECT_EQ(c.mode, ProcessorMode::ContextSwitch);
    EXPECT_EQ(c.engine, SimEngine::Heap);
    EXPECT_EQ(c.simThreads, 2u);
    EXPECT_EQ(c.seed, 99u);
    EXPECT_EQ(c.network.meshWidth, 4u);
    EXPECT_FALSE(c.check.invariants);
    EXPECT_TRUE(c.check.races);
    EXPECT_TRUE(c.check.panicOnRace);
    EXPECT_TRUE(c.telemetry.trace);
}

TEST(Builder, IdealNetworkKnob)
{
    EXPECT_TRUE(MachineBuilder().idealNetwork().config().network.ideal);
    EXPECT_FALSE(
        MachineBuilder().idealNetwork(false).config().network.ideal);
}

TEST(Builder, FaultsKnobForcesEnabled)
{
    FaultConfig f;
    f.dropRate = 0.01; // caller forgot f.enabled — builder fixes it
    const MachineBuilder b = MachineBuilder().nodes(4).faults(f);
    EXPECT_TRUE(b.config().network.fault.enabled);
    EXPECT_DOUBLE_EQ(b.config().network.fault.dropRate, 0.01);
}

TEST(Builder, WatchdogKnobEnablesAndSetsWindow)
{
    const MachineBuilder b = MachineBuilder().nodes(4).watchdog(1u << 12);
    EXPECT_TRUE(b.config().watchdog.enabled);
    EXPECT_EQ(b.config().watchdog.windowCycles, Cycles{1u << 12});
}

TEST(Builder, TuneEscapeHatchSeesFullConfig)
{
    const MachineBuilder b = MachineBuilder().nodes(4).tune(
        [](MachineConfig& c) { c.cost.ctxSwitchCycles = 140; });
    EXPECT_EQ(b.config().cost.ctxSwitchCycles, Cycles{140});
}

TEST(Builder, EngineStringRoundTrip)
{
    for (Engine e :
         {Engine::Auto, Engine::Wheel, Engine::Heap, Engine::Parallel}) {
        Engine parsed = Engine::Auto;
        EXPECT_TRUE(engineFromString(toString(e), parsed));
        EXPECT_EQ(parsed, e);
    }
    Engine parsed = Engine::Auto;
    EXPECT_FALSE(engineFromString("quantum", parsed));
}

TEST(Builder, BuiltMachineMatchesKnobs)
{
    auto m = MachineBuilder().nodes(6).framesPerNode(64).build();
    EXPECT_EQ(m->nodeCount(), 6u);
}

/** The deprecated direct constructor and the builder must agree. */
TEST(Builder, DeprecatedCtorPathIsIdentical)
{
    auto workload = [](core::Machine& m) {
        const Addr page = m.alloc(kPageBytes, 0);
        m.replicate(page, 2);
        m.settle();
        for (NodeId n = 0; n < m.nodeCount(); ++n) {
            m.spawn(n, [page, n](core::Context& ctx) {
                for (Word i = 0; i < 8; ++i) {
                    ctx.write(page + 4 * n, ctx.fadd(page + 64, 1) + i);
                    ctx.read(page + 4 * ((n + 1) % 4));
                    ctx.compute(20);
                }
                ctx.fence();
            });
        }
        m.run();
        return page;
    };

    auto built = MachineBuilder().nodes(4).framesPerNode(64).build();
    const Addr a1 = workload(*built);

    MachineConfig cfg;
    cfg.nodes = 4;
    cfg.framesPerNode = 64;
    core::Machine direct(cfg);
    const Addr a2 = workload(direct);

    ASSERT_EQ(a1, a2);
    EXPECT_EQ(built->now(), direct.now());
    for (Word off = 0; off < 128; off += 4) {
        EXPECT_EQ(built->peek(a1 + off), direct.peek(a2 + off))
            << "offset " << off;
    }
    const core::MachineReport r1 = built->report();
    const core::MachineReport r2 = direct.report();
    EXPECT_EQ(r1.localReads, r2.localReads);
    EXPECT_EQ(r1.remoteReads, r2.remoteReads);
    EXPECT_EQ(r1.updateMessages, r2.updateMessages);
}

} // namespace
} // namespace plus
