/**
 * @file
 * Direct tests of the coherence manager with hand-wired nodes and
 * scripted requests (no Machine, no processor): master redirection of
 * writes addressed to a non-master copy, interlocked execution at the
 * master, chain acknowledgement bookkeeping, reads served by the
 * addressed copy, nacks for dead frames, page-copy batching, and
 * message statistics.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mem/coherence_tables.hpp"
#include "mem/local_memory.hpp"
#include "net/network.hpp"
#include "proto/coherence_manager.hpp"
#include "sim/engine.hpp"

namespace plus {
namespace proto {
namespace {

/** Three hand-wired nodes on a 3x1 mesh. */
class CmHarness : public ::testing::Test
{
  protected:
    static constexpr unsigned kNodes = 3;

    void
    SetUp() override
    {
        topology_ = std::make_unique<net::Topology>(kNodes, kNodes, 1);
        NetworkConfig netcfg;
        network_ = std::make_unique<net::MeshNetwork>(engine_, *topology_,
                                                      netcfg);
        for (NodeId n = 0; n < kNodes; ++n) {
            memory_.push_back(std::make_unique<mem::LocalMemory>(8));
            tables_.push_back(std::make_unique<mem::CoherenceTables>());
        }
        for (NodeId n = 0; n < kNodes; ++n) {
            CoherenceManager::Deps deps;
            deps.engine = &engine_;
            deps.network = network_.get();
            deps.memory = memory_[n].get();
            deps.tables = tables_[n].get();
            cm_.push_back(std::make_unique<CoherenceManager>(n, cost_,
                                                             deps));
            network_->setDeliveryHandler(n, [this, n](net::Packet p) {
                cm_[n]->onPacket(std::move(p));
            });
        }
    }

    /**
     * Build a page with copies on the given nodes (first is master);
     * returns the per-node frames (kInvalidFrame where absent).
     */
    std::vector<FrameId>
    makePage(const std::vector<NodeId>& holders)
    {
        std::vector<FrameId> frames(kNodes, kInvalidFrame);
        std::vector<PhysPage> copies;
        for (NodeId n : holders) {
            frames[n] = memory_[n]->allocFrame();
            copies.push_back(PhysPage{n, frames[n]});
        }
        for (std::size_t i = 0; i < copies.size(); ++i) {
            tables_[copies[i].node]->setMaster(copies[i].frame,
                                               copies.front());
            tables_[copies[i].node]->setNextCopy(
                copies[i].frame,
                i + 1 < copies.size()
                    ? std::optional<PhysPage>(copies[i + 1])
                    : std::nullopt);
        }
        return frames;
    }

    sim::Engine engine_;
    CostModel cost_;
    std::unique_ptr<net::Topology> topology_;
    std::unique_ptr<net::MeshNetwork> network_;
    std::vector<std::unique_ptr<mem::LocalMemory>> memory_;
    std::vector<std::unique_ptr<mem::CoherenceTables>> tables_;
    std::vector<std::unique_ptr<CoherenceManager>> cm_;
};

TEST_F(CmHarness, LocalReadReturnsMemoryValue)
{
    auto frames = makePage({0});
    memory_[0]->write(frames[0], 5, 42);
    Word got = 0;
    cm_[0]->procRead(1, 5, PhysAddr{{0, frames[0]}, 5},
                     [&](Word v) { got = v; });
    engine_.run();
    EXPECT_EQ(got, 42u);
    EXPECT_EQ(cm_[0]->stats().localReads, 1u);
}

TEST_F(CmHarness, RemoteReadServedByAddressedCopy)
{
    auto frames = makePage({2, 1}); // master on 2, copy on 1
    memory_[1]->write(frames[1], 7, 77); // stale-able replica value
    Word got = 0;
    // Node 0 reads via node 1's copy — served there, not at the master.
    cm_[0]->procRead(1, 7, PhysAddr{{1, frames[1]}, 7},
                     [&](Word v) { got = v; });
    engine_.run();
    EXPECT_EQ(got, 77u);
    EXPECT_EQ(cm_[0]->stats().remoteReads, 1u);
    EXPECT_EQ(cm_[1]->stats().sentOf(MsgType::ReadResp), 1u);
    EXPECT_EQ(cm_[2]->stats().totalSent(), 0u);
}

TEST_F(CmHarness, WriteAddressedToNonMasterRedirects)
{
    auto frames = makePage({2, 1}); // master on 2, replica on 1
    bool accepted = false;
    // Node 0 writes via its mapping to node 1's copy; the write must be
    // performed at the master (node 2) first, then update node 1.
    cm_[0]->procWrite(1, 3, PhysAddr{{1, frames[1]}, 3}, 99,
                      [&] { accepted = true; });
    engine_.run();
    EXPECT_TRUE(accepted);
    EXPECT_EQ(memory_[2]->read(frames[2], 3), 99u);
    EXPECT_EQ(memory_[1]->read(frames[1], 3), 99u);
    // node1 forwarded the WriteReq to the master.
    EXPECT_EQ(cm_[1]->stats().sentOf(MsgType::WriteReq), 1u);
    EXPECT_EQ(cm_[2]->stats().sentOf(MsgType::UpdateReq), 1u);
    // The tail (node 1) acknowledged the originator (node 0).
    EXPECT_EQ(cm_[1]->stats().sentOf(MsgType::WriteAck), 1u);
    EXPECT_TRUE(cm_[0]->pendingWrites().empty());
}

TEST_F(CmHarness, UnreplicatedLocalWriteSendsNothing)
{
    auto frames = makePage({0});
    cm_[0]->procWrite(1, 0, PhysAddr{{0, frames[0]}, 0}, 7, [] {});
    engine_.run();
    EXPECT_EQ(memory_[0]->read(frames[0], 0), 7u);
    EXPECT_EQ(cm_[0]->stats().totalSent(), 0u);
    EXPECT_EQ(cm_[0]->stats().localWrites, 1u);
}

TEST_F(CmHarness, RmwExecutesAtMasterAndReturnsOldValue)
{
    auto frames = makePage({2, 0}); // master remote, replica local
    memory_[2]->write(frames[2], 1, 10);
    DelayedOpHandle handle = 0;
    cm_[0]->procIssueRmw(RmwOp::FetchAdd, 1, 1,
                         PhysAddr{{0, frames[0]}, 1}, 5,
                         [&](DelayedOpHandle h) { handle = h; });
    engine_.run();
    ASSERT_TRUE(cm_[0]->rmwReady(handle));
    Word old = 0;
    cm_[0]->procVerify(handle, [&](Word v) { old = v; });
    engine_.run();
    EXPECT_EQ(old, 10u);
    EXPECT_EQ(memory_[2]->read(frames[2], 1), 15u);
    EXPECT_EQ(memory_[0]->read(frames[0], 1), 15u); // update flowed back
}

TEST_F(CmHarness, ReadOfDeadFrameIsNackedAndRetried)
{
    auto frames = makePage({0});
    memory_[0]->write(frames[0], 2, 123);
    // Node 1's translator re-points at node 0's live frame.
    cm_[1]->setTranslator([&](Vpn) { return PhysPage{0, frames[0]}; });
    // Stale request: node 1 reads a frame on node 2 that was never
    // allocated (stands for a deleted copy).
    Word got = 0;
    cm_[1]->procRead(1, 2, PhysAddr{{2, 4}, 2}, [&](Word v) { got = v; });
    engine_.run();
    EXPECT_EQ(got, 123u);
    EXPECT_EQ(cm_[1]->stats().retries, 1u);
    EXPECT_EQ(cm_[2]->stats().sentOf(MsgType::Nack), 1u);
}

TEST_F(CmHarness, WriteToDeadFrameIsNackedAndRetried)
{
    auto frames = makePage({0});
    cm_[1]->setTranslator([&](Vpn) { return PhysPage{0, frames[0]}; });
    cm_[1]->procWrite(1, 6, PhysAddr{{2, 4}, 6}, 55, [] {});
    engine_.run();
    EXPECT_EQ(memory_[0]->read(frames[0], 6), 55u);
    EXPECT_TRUE(cm_[1]->pendingWrites().empty());
}

TEST_F(CmHarness, RmwToDeadFrameIsNackedAndRetried)
{
    auto frames = makePage({0});
    memory_[0]->write(frames[0], 0, 4);
    cm_[1]->setTranslator([&](Vpn) { return PhysPage{0, frames[0]}; });
    DelayedOpHandle handle = 0;
    cm_[1]->procIssueRmw(RmwOp::Xchng, 1, 0, PhysAddr{{2, 4}, 0}, 9,
                         [&](DelayedOpHandle h) { handle = h; });
    engine_.run();
    Word old = 0;
    cm_[1]->procVerify(handle, [&](Word v) { old = v; });
    engine_.run();
    EXPECT_EQ(old, 4u);
    EXPECT_EQ(memory_[0]->read(frames[0], 0), 9u);
}

TEST_F(CmHarness, PageCopyTransfersWholePage)
{
    auto frames = makePage({0});
    for (Addr w = 0; w < kPageWords; ++w) {
        memory_[0]->write(frames[0], w, static_cast<Word>(w * 3 + 1));
    }
    const FrameId dst = memory_[2]->allocFrame();
    // Insert node 2 as successor so the copy engine has a live chain.
    tables_[0]->setNextCopy(frames[0], PhysPage{2, dst});
    tables_[2]->setMaster(dst, PhysPage{0, frames[0]});

    bool done = false;
    cm_[0]->setPageCopyDoneHandler([&](std::uint32_t id) {
        EXPECT_EQ(id, 9u);
        done = true;
    });
    cm_[0]->startPageCopy(frames[0], PhysPage{2, dst}, 9);
    engine_.run();
    EXPECT_TRUE(done);
    for (Addr w = 0; w < kPageWords; ++w) {
        ASSERT_EQ(memory_[2]->read(dst, w), w * 3 + 1);
    }
    EXPECT_EQ(cm_[0]->stats().sentOf(MsgType::PageCopyData),
              kPageWords / 32);
}

TEST_F(CmHarness, FrameFlushFreesAndForgets)
{
    auto frames = makePage({0, 2});
    // Splice first (as the Machine would), then flush node 2's copy.
    tables_[0]->setNextCopy(frames[0], std::nullopt);
    cm_[0]->osFlushRemoteFrame(PhysPage{2, frames[2]});
    engine_.run();
    EXPECT_FALSE(memory_[2]->allocated(frames[2]));
    EXPECT_FALSE(tables_[2]->knows(frames[2]));
}

TEST_F(CmHarness, ManagerOccupancySerializesRequests)
{
    // Two interlocked ops arriving back-to-back at one master are
    // serviced one after the other: the second result is delayed by at
    // least the first's occupancy.
    auto frames = makePage({1});
    DelayedOpHandle h0 = 0;
    DelayedOpHandle h1 = 0;
    cm_[0]->procIssueRmw(RmwOp::FetchAdd, 1, 0,
                         PhysAddr{{1, frames[1]}, 0}, 1,
                         [&](DelayedOpHandle h) { h0 = h; });
    cm_[2]->procIssueRmw(RmwOp::FetchAdd, 1, 0,
                         PhysAddr{{1, frames[1]}, 0}, 1,
                         [&](DelayedOpHandle h) { h1 = h; });
    Cycles t0 = 0;
    Cycles t1 = 0;
    engine_.schedule(0, [&] {
        cm_[0]->procVerify(h0, [&](Word) { t0 = engine_.now(); });
        cm_[2]->procVerify(h1, [&](Word) { t1 = engine_.now(); });
    });
    engine_.run();
    EXPECT_EQ(memory_[1]->read(frames[1], 0), 2u);
    const Cycles gap = t0 > t1 ? t0 - t1 : t1 - t0;
    EXPECT_GE(gap, cost_.cmRmwSimple);
    EXPECT_GE(cm_[1]->stats().busyCycles, 2 * cost_.cmRmwSimple);
}

TEST_F(CmHarness, StatsCountMessageMix)
{
    auto frames = makePage({1, 2});
    cm_[0]->procWrite(1, 0, PhysAddr{{1, frames[1]}, 0}, 1, [] {});
    cm_[0]->procRead(1, 0, PhysAddr{{2, frames[2]}, 0}, [](Word) {});
    engine_.run();
    EXPECT_EQ(cm_[0]->stats().sentOf(MsgType::WriteReq), 1u);
    EXPECT_EQ(cm_[0]->stats().sentOf(MsgType::ReadReq), 1u);
    EXPECT_EQ(cm_[1]->stats().sentOf(MsgType::UpdateReq), 1u);
    EXPECT_EQ(cm_[2]->stats().sentOf(MsgType::WriteAck), 1u);
    EXPECT_EQ(cm_[2]->stats().sentOf(MsgType::ReadResp), 1u);
}

} // namespace
} // namespace proto
} // namespace plus
