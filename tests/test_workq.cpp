/**
 * @file
 * Tests for the distributed work queue: FIFO per lane, capacity
 * behaviour, stealing order (replica-aware), and multi-producer /
 * multi-consumer integrity.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/context.hpp"
#include "core/machine.hpp"
#include "core/workq.hpp"

namespace plus {
namespace core {
namespace {

MachineConfig
cfgFor(unsigned nodes)
{
    MachineConfig cfg;
    cfg.nodes = nodes;
    cfg.framesPerNode = 128;
    return cfg;
}

std::vector<NodeId>
lanes(unsigned n)
{
    std::vector<NodeId> v(n);
    for (NodeId i = 0; i < n; ++i) {
        v[i] = i;
    }
    return v;
}

TEST(WorkQueue, FifoWithinOneLane)
{
    Machine m(cfgFor(2));
    WorkQueue wq = WorkQueue::create(m, lanes(2));
    std::vector<Word> popped;
    m.spawn(0, [&](Context& ctx) {
        for (Word i = 1; i <= 10; ++i) {
            wq.push(ctx, 0, i);
        }
        while (auto item = wq.tryPop(ctx, 0)) {
            popped.push_back(*item);
        }
    });
    m.run();
    ASSERT_EQ(popped.size(), 10u);
    for (Word i = 0; i < 10; ++i) {
        EXPECT_EQ(popped[i], i + 1);
    }
}

TEST(WorkQueue, EmptyPopReturnsNothing)
{
    Machine m(cfgFor(2));
    WorkQueue wq = WorkQueue::create(m, lanes(2));
    bool empty_ok = false;
    m.spawn(0, [&](Context& ctx) {
        empty_ok = !wq.tryPop(ctx, 0).has_value() &&
                   !wq.popAny(ctx, 0).has_value();
    });
    m.run();
    EXPECT_TRUE(empty_ok);
}

TEST(WorkQueue, FillToCapacityThenOverflow)
{
    Machine m(cfgFor(1));
    WorkQueue wq = WorkQueue::create(m, lanes(1));
    const unsigned cap = wq.capacityPerLane();
    unsigned accepted = 0;
    bool overflow_rejected = false;
    m.spawn(0, [&](Context& ctx) {
        for (unsigned i = 0; i < cap; ++i) {
            if (wq.tryPush(ctx, 0, i % 1000)) {
                ++accepted;
            }
        }
        overflow_rejected = !wq.tryPush(ctx, 0, 7);
        // Drain one, then there is room again.
        ASSERT_TRUE(wq.tryPop(ctx, 0).has_value());
        EXPECT_TRUE(wq.tryPush(ctx, 0, 7));
    });
    m.run();
    EXPECT_EQ(accepted, cap);
    EXPECT_TRUE(overflow_rejected);
}

TEST(WorkQueue, WrapAroundPreservesOrder)
{
    Machine m(cfgFor(1));
    WorkQueue wq = WorkQueue::create(m, lanes(1));
    const unsigned cap = wq.capacityPerLane();
    bool ok = true;
    m.spawn(0, [&](Context& ctx) {
        // Cycle more items than the capacity through the ring.
        Word next_push = 0;
        Word next_pop = 0;
        for (int round = 0; round < 3; ++round) {
            for (unsigned i = 0; i < cap / 2; ++i) {
                wq.push(ctx, 0, next_push++ % 1024);
            }
            for (unsigned i = 0; i < cap / 2; ++i) {
                auto item = wq.tryPop(ctx, 0);
                if (!item || *item != next_pop++ % 1024) {
                    ok = false;
                }
            }
        }
    });
    m.run();
    EXPECT_TRUE(ok);
}

TEST(WorkQueue, PopAnyStealsFromOtherLanes)
{
    Machine m(cfgFor(4));
    WorkQueue wq = WorkQueue::create(m, lanes(4));
    std::optional<Word> got;
    m.spawn(0, [&](Context& ctx) {
        wq.push(ctx, 3, 77); // work only on a remote lane
        got = wq.popAny(ctx, 0);
    });
    m.run();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 77u);
}

TEST(WorkQueue, BoundedScanDoesNotReachFarLanes)
{
    Machine m(cfgFor(4));
    WorkQueue wq = WorkQueue::create(m, lanes(4));
    std::optional<Word> got;
    m.spawn(0, [&](Context& ctx) {
        wq.push(ctx, 3, 77);
        got = wq.popAny(ctx, 0, /*max_scan=*/1); // own lane only
    });
    m.run();
    EXPECT_FALSE(got.has_value());
}

TEST(WorkQueue, CheapLanesGrowWithReplication)
{
    Machine m1(cfgFor(8));
    WorkQueue unreplicated = WorkQueue::create(m1, lanes(8), 1);
    EXPECT_EQ(unreplicated.cheapLanes(0), 1u);

    Machine m2(cfgFor(8));
    WorkQueue replicated = WorkQueue::create(m2, lanes(8), 4);
    // Own lane + the lanes whose pages were replicated here.
    EXPECT_GT(replicated.cheapLanes(0), 1u);
}

TEST(WorkQueue, MultiProducerMultiConsumerConservesItems)
{
    constexpr unsigned kNodes = 4;
    constexpr unsigned kPerProducer = 50;
    Machine m(cfgFor(kNodes));
    WorkQueue wq = WorkQueue::create(m, lanes(kNodes));
    const Addr sum = m.alloc(kPageBytes, 0);
    const Addr produced = m.alloc(kPageBytes, 0);

    for (NodeId n = 0; n < kNodes; ++n) {
        m.spawn(n, [&, n](Context& ctx) {
            // Produce tagged items, then consume until the global count
            // of consumed items matches the expected total.
            for (unsigned i = 0; i < kPerProducer; ++i) {
                wq.push(ctx, n, n * 1000 + i);
                ctx.fadd(produced, 1);
            }
            while (true) {
                if (auto item = wq.popAny(ctx, n)) {
                    ctx.fadd(sum, *item);
                    ctx.fadd(produced, static_cast<Word>(-1));
                } else if (ctx.read(produced) == 0) {
                    break;
                } else {
                    ctx.pause(32);
                }
            }
        });
    }
    m.run();

    Word expected = 0;
    for (unsigned n = 0; n < kNodes; ++n) {
        for (unsigned i = 0; i < kPerProducer; ++i) {
            expected += n * 1000 + i;
        }
    }
    EXPECT_EQ(m.peek(sum), expected);
}

TEST(WorkQueue, ZeroPayloadItemRoundTrips)
{
    Machine m(cfgFor(1));
    WorkQueue wq = WorkQueue::create(m, lanes(1));
    std::optional<Word> got;
    m.spawn(0, [&](Context& ctx) {
        wq.push(ctx, 0, 0);
        got = wq.tryPop(ctx, 0);
    });
    m.run();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 0u);
}

} // namespace
} // namespace core
} // namespace plus
