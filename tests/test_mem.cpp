/**
 * @file
 * Unit tests for the memory subsystem: local memory frames, page
 * tables and the centralized directory, copy-lists (including the
 * OS's path-length ordering), coherence tables, and the competitive-
 * replication reference counters.
 */

#include <gtest/gtest.h>

#include "mem/coherence_tables.hpp"
#include "mem/copy_list.hpp"
#include "mem/local_memory.hpp"
#include "mem/page_table.hpp"
#include "mem/ref_counters.hpp"

namespace plus {
namespace mem {
namespace {

// --- LocalMemory -----------------------------------------------------------

TEST(LocalMemory, AllocatesZeroFilledFrames)
{
    LocalMemory memory(4);
    const FrameId f = memory.allocFrame();
    for (Addr off = 0; off < kPageWords; off += 100) {
        EXPECT_EQ(memory.read(f, off), 0u);
    }
}

TEST(LocalMemory, ReadBackWrites)
{
    LocalMemory memory(4);
    const FrameId f = memory.allocFrame();
    memory.write(f, 0, 1);
    memory.write(f, kPageWords - 1, 2);
    EXPECT_EQ(memory.read(f, 0), 1u);
    EXPECT_EQ(memory.read(f, kPageWords - 1), 2u);
}

TEST(LocalMemory, FramesAreIndependent)
{
    LocalMemory memory(4);
    const FrameId a = memory.allocFrame();
    const FrameId b = memory.allocFrame();
    memory.write(a, 5, 111);
    memory.write(b, 5, 222);
    EXPECT_EQ(memory.read(a, 5), 111u);
    EXPECT_EQ(memory.read(b, 5), 222u);
}

TEST(LocalMemory, FreeAndReuseZeroes)
{
    LocalMemory memory(2);
    const FrameId a = memory.allocFrame();
    memory.write(a, 0, 42);
    memory.freeFrame(a);
    EXPECT_FALSE(memory.allocated(a));
    const FrameId b = memory.allocFrame();
    EXPECT_EQ(b, a); // LIFO free list
    EXPECT_EQ(memory.read(b, 0), 0u);
}

TEST(LocalMemory, ExhaustionIsFatal)
{
    LocalMemory memory(2);
    memory.allocFrame();
    memory.allocFrame();
    EXPECT_THROW(memory.allocFrame(), FatalError);
}

TEST(LocalMemory, DoubleFreeIsPanic)
{
    LocalMemory memory(2);
    const FrameId f = memory.allocFrame();
    memory.freeFrame(f);
    EXPECT_THROW(memory.freeFrame(f), PanicError);
}

TEST(LocalMemory, OutOfRangeOffsetIsPanic)
{
    LocalMemory memory(1);
    const FrameId f = memory.allocFrame();
    EXPECT_THROW(memory.read(f, kPageWords), PanicError);
}

TEST(LocalMemory, TracksUsage)
{
    LocalMemory memory(8);
    EXPECT_EQ(memory.framesInUse(), 0u);
    const FrameId f = memory.allocFrame();
    memory.allocFrame();
    EXPECT_EQ(memory.framesInUse(), 2u);
    memory.freeFrame(f);
    EXPECT_EQ(memory.framesInUse(), 1u);
    EXPECT_EQ(memory.capacityFrames(), 8u);
}

// --- CopyList ---------------------------------------------------------------

TEST(CopyList, SingleCopyIsMaster)
{
    CopyList cl(PhysPage{3, 7});
    EXPECT_EQ(cl.size(), 1u);
    EXPECT_EQ(cl.master(), (PhysPage{3, 7}));
    EXPECT_FALSE(cl.successorOf(cl.master()).has_value());
}

TEST(CopyList, InsertAfterMaintainsOrder)
{
    CopyList cl(PhysPage{0, 0});
    cl.insertAfter(PhysPage{0, 0}, PhysPage{1, 1});
    cl.insertAfter(PhysPage{0, 0}, PhysPage{2, 2});
    // List: 0, 2, 1.
    EXPECT_EQ(cl.successorOf(PhysPage{0, 0}), (PhysPage{2, 2}));
    EXPECT_EQ(cl.successorOf(PhysPage{2, 2}), (PhysPage{1, 1}));
    EXPECT_FALSE(cl.successorOf(PhysPage{1, 1}).has_value());
}

TEST(CopyList, CopyOnFindsNode)
{
    CopyList cl(PhysPage{0, 0});
    cl.append(PhysPage{4, 9});
    EXPECT_TRUE(cl.hasCopyOn(4));
    EXPECT_EQ(cl.copyOn(4), (PhysPage{4, 9}));
    EXPECT_FALSE(cl.hasCopyOn(5));
}

TEST(CopyList, DuplicateNodeIsPanic)
{
    CopyList cl(PhysPage{0, 0});
    EXPECT_THROW(cl.append(PhysPage{0, 1}), PanicError);
}

TEST(CopyList, RemovePromotesSuccessorWhenMasterRemoved)
{
    CopyList cl(PhysPage{0, 0});
    cl.append(PhysPage{1, 1});
    cl.removeOn(0);
    EXPECT_EQ(cl.master(), (PhysPage{1, 1}));
}

TEST(CopyList, OrderForPathLengthNeverHurts)
{
    const net::Topology topo(16, 4, 4);
    CopyList cl(PhysPage{0, 0});
    // Deliberately bad order: far corner, then neighbours.
    cl.append(PhysPage{15, 1});
    cl.append(PhysPage{1, 2});
    cl.append(PhysPage{4, 3});
    cl.append(PhysPage{11, 4});
    const unsigned before = cl.pathLength(topo);
    cl.orderForPathLength(topo);
    const unsigned after = cl.pathLength(topo);
    EXPECT_LE(after, before);
    // Master must stay first.
    EXPECT_EQ(cl.master(), (PhysPage{0, 0}));
    EXPECT_EQ(cl.size(), 5u);
}

TEST(CopyList, PathLengthOfChain)
{
    const net::Topology topo(16, 4, 4);
    CopyList cl(PhysPage{0, 0});
    cl.append(PhysPage{1, 0});
    cl.append(PhysPage{2, 0});
    EXPECT_EQ(cl.pathLength(topo), 2u);
}

// --- PageTable / PageDirectory ----------------------------------------------

TEST(PageTable, MissThenInstallThenHit)
{
    PageTable pt;
    EXPECT_FALSE(pt.lookup(7).has_value());
    pt.install(7, PhysPage{1, 2});
    EXPECT_EQ(pt.lookup(7), (PhysPage{1, 2}));
    EXPECT_EQ(pt.fills(), 1u);
}

TEST(PageTable, InvalidateRemoves)
{
    PageTable pt;
    pt.install(7, PhysPage{1, 2});
    pt.invalidate(7);
    EXPECT_FALSE(pt.contains(7));
    EXPECT_EQ(pt.invalidations(), 1u);
    pt.invalidate(7); // idempotent, not counted twice
    EXPECT_EQ(pt.invalidations(), 1u);
}

TEST(PageDirectory, CreateLookupDestroy)
{
    PageDirectory dir;
    dir.create(3, PhysPage{0, 5});
    EXPECT_TRUE(dir.contains(3));
    EXPECT_EQ(dir.copyList(3).master(), (PhysPage{0, 5}));
    dir.destroy(3);
    EXPECT_FALSE(dir.contains(3));
}

TEST(PageDirectory, DuplicateCreateIsPanic)
{
    PageDirectory dir;
    dir.create(3, PhysPage{0, 5});
    EXPECT_THROW(dir.create(3, PhysPage{1, 6}), PanicError);
}

// --- CoherenceTables ----------------------------------------------------------

TEST(CoherenceTables, MasterAndNextCopy)
{
    CoherenceTables tables;
    tables.setMaster(4, PhysPage{0, 9});
    EXPECT_TRUE(tables.knows(4));
    EXPECT_EQ(tables.master(4), (PhysPage{0, 9}));
    EXPECT_FALSE(tables.nextCopy(4).has_value());
    tables.setNextCopy(4, PhysPage{2, 3});
    EXPECT_EQ(tables.nextCopy(4), (PhysPage{2, 3}));
    tables.setNextCopy(4, std::nullopt);
    EXPECT_FALSE(tables.nextCopy(4).has_value());
}

TEST(CoherenceTables, EraseDropsBoth)
{
    CoherenceTables tables;
    tables.setMaster(4, PhysPage{0, 9});
    tables.setNextCopy(4, PhysPage{2, 3});
    tables.erase(4);
    EXPECT_FALSE(tables.knows(4));
    EXPECT_THROW(tables.master(4), PanicError);
}

// --- RefCounters ----------------------------------------------------------------

TEST(RefCounters, FiresExactlyAtThreshold)
{
    RefCounters counters(3);
    int fired = 0;
    Vpn seen = 0;
    counters.setOverflowHandler([&](Vpn vpn, std::uint64_t) {
        ++fired;
        seen = vpn;
    });
    counters.recordRemoteRef(9);
    counters.recordRemoteRef(9);
    EXPECT_EQ(fired, 0);
    counters.recordRemoteRef(9);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(seen, 9u);
    // The counter re-arms.
    counters.recordRemoteRef(9);
    counters.recordRemoteRef(9);
    counters.recordRemoteRef(9);
    EXPECT_EQ(fired, 2);
}

TEST(RefCounters, PagesAreIndependent)
{
    RefCounters counters(2);
    int fired = 0;
    counters.setOverflowHandler([&](Vpn, std::uint64_t) { ++fired; });
    counters.recordRemoteRef(1);
    counters.recordRemoteRef(2);
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(counters.count(1), 1u);
    EXPECT_EQ(counters.totalRemoteRefs(), 2u);
}

TEST(RefCounters, ThresholdCanBeRearmed)
{
    RefCounters counters(1000);
    int fired = 0;
    counters.setOverflowHandler([&](Vpn, std::uint64_t) { ++fired; });
    counters.recordRemoteRef(1);
    EXPECT_EQ(fired, 0);
    counters.setThreshold(2);
    counters.recordRemoteRef(1);
    EXPECT_EQ(fired, 1);
}

} // namespace
} // namespace mem
} // namespace plus
