/**
 * @file
 * Correctness tests for the production-system workload: the parallel
 * forward-chaining closure must equal the host-side exact fixpoint
 * under every node count, mode and replication level.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "core/machine.hpp"
#include "workloads/production.hpp"

namespace plus {
namespace workloads {
namespace {

MachineConfig
cfgFor(unsigned nodes, ProcessorMode mode = ProcessorMode::Delayed)
{
    MachineConfig cfg;
    cfg.nodes = nodes;
    cfg.framesPerNode = 512;
    cfg.mode = mode;
    return cfg;
}

TEST(Production, ClosureOnTinyRuleBase)
{
    RuleBase base;
    base.facts = 8;
    base.initialFacts = {0, 1};
    base.rules = {{0, 1, 2}, {1, 2, 3}, {3, 0, 4}, {5, 6, 7}};
    const auto present = closure(base);
    EXPECT_TRUE(present[0] && present[1] && present[2] && present[3] &&
                present[4]);
    EXPECT_FALSE(present[5] || present[6] || present[7]);
}

TEST(Production, RuleBaseCascades)
{
    Xoshiro256 rng(3);
    const RuleBase base = makeRuleBase(512, 1536, 8, rng);
    const auto present = closure(base);
    const auto reached = std::accumulate(present.begin(), present.end(),
                                         std::size_t{0});
    // A healthy cascade: well beyond the initial facts, below everything.
    EXPECT_GT(reached, base.initialFacts.size() * 4);
}

TEST(Production, SingleNodeMatchesClosure)
{
    core::Machine m(cfgFor(1));
    ProductionConfig cfg;
    cfg.facts = 256;
    cfg.rules = 768;
    const ProductionResult r = runProduction(m, cfg);
    EXPECT_TRUE(r.correct);
    EXPECT_GT(r.firings, 0u);
}

struct ProdParam {
    unsigned nodes;
    unsigned replication;
    ProcessorMode mode;
};

class ProductionSweep : public ::testing::TestWithParam<ProdParam>
{
};

TEST_P(ProductionSweep, MatchesClosure)
{
    const ProdParam p = GetParam();
    core::Machine m(cfgFor(p.nodes, p.mode));
    ProductionConfig cfg;
    cfg.facts = 256;
    cfg.rules = 768;
    cfg.seed = 17;
    cfg.replication = p.replication;
    const ProductionResult r = runProduction(m, cfg);
    EXPECT_TRUE(r.correct);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ProductionSweep,
    ::testing::Values(
        ProdParam{2, 1, ProcessorMode::Delayed},
        ProdParam{4, 1, ProcessorMode::Delayed},
        ProdParam{4, 3, ProcessorMode::Delayed},
        ProdParam{8, 1, ProcessorMode::Delayed},
        ProdParam{8, 4, ProcessorMode::Delayed},
        ProdParam{16, 4, ProcessorMode::Delayed},
        ProdParam{4, 1, ProcessorMode::Blocking},
        ProdParam{9, 3, ProcessorMode::Delayed}),
    [](const ::testing::TestParamInfo<ProdParam>& info) {
        return "n" + std::to_string(info.param.nodes) + "_r" +
               std::to_string(info.param.replication) +
               (info.param.mode == ProcessorMode::Blocking ? "_blocking"
                                                           : "_delayed");
    });

TEST(Production, MatchesAreReadDominated)
{
    // The production system is the read-heavy member of the workload
    // suite: matches (reads) far outnumber firings (interlocked ops).
    core::Machine m(cfgFor(8));
    ProductionConfig cfg;
    cfg.facts = 256;
    cfg.rules = 1024;
    const ProductionResult r = runProduction(m, cfg);
    ASSERT_TRUE(r.correct);
    EXPECT_GT(r.matches, r.firings);
}

} // namespace
} // namespace workloads
} // namespace plus
