/**
 * @file
 * The third application class of the paper's evaluation (Section 2.5):
 * a forward-chaining production system. Workers match newly asserted
 * facts against a shared rule base and fire rules until fixpoint;
 * the read-heavy match index is a natural replication target.
 *
 *   $ ./production_system [nodes] [facts] [rules] [replication]
 */

#include <cstdlib>
#include <iostream>

#include "plus/plus.hpp"
#include "workloads/production.hpp"

int
main(int argc, char** argv)
{
    using namespace plus;

    const unsigned nodes =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 8;
    const std::uint32_t facts =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 1024;
    const std::uint32_t rules =
        argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 3072;
    const unsigned replication =
        argc > 4 ? static_cast<unsigned>(std::atoi(argv[4])) : 2;

    auto machine_ptr =
        MachineBuilder().nodes(nodes).framesPerNode(4096).build();
    core::Machine& machine = *machine_ptr;

    workloads::ProductionConfig cfg;
    cfg.facts = facts;
    cfg.rules = rules;
    cfg.replication = replication;
    cfg.seed = 42;

    std::cout << "running production system: " << nodes << " nodes, "
              << facts << " facts, " << rules << " rules, replication "
              << replication << "\n";
    const workloads::ProductionResult result =
        runProduction(machine, cfg);

    std::cout << (result.correct
                      ? "asserted facts match the exact closure\n"
                      : "CLOSURE WRONG\n")
              << "simulated cycles: " << result.elapsed << "\n"
              << "matches tried:    " << result.matches << "\n"
              << "rules fired:      " << result.firings << "\n"
              << "reads local/remote: " << result.report.localReads
              << "/" << result.report.remoteReads << "\n"
              << "utilization:        "
              << result.report.utilization(nodes) << "\n";
    return result.correct ? 0 : 1;
}
