/**
 * @file
 * The speech-recognition beam search of Section 3.4: a fine-grained,
 * synchronization-heavy search over an HMM-style layered graph. Run it
 * in the three latency-hiding modes of Figure 3-1 and compare.
 *
 *   $ ./beam_search [nodes] [mode: blocking|delayed|ctx] [ctx-cycles]
 */

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "plus/plus.hpp"
#include "workloads/beam.hpp"

int
main(int argc, char** argv)
{
    using namespace plus;

    const unsigned nodes =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 8;
    const char* mode_name = argc > 2 ? argv[2] : "delayed";
    const Cycles ctx_cycles =
        argc > 3 ? static_cast<Cycles>(std::atoi(argv[3])) : 40;

    ProcessorMode mode = ProcessorMode::Delayed;
    if (std::strcmp(mode_name, "blocking") == 0) {
        mode = ProcessorMode::Blocking;
    } else if (std::strcmp(mode_name, "ctx") == 0) {
        mode = ProcessorMode::ContextSwitch;
    }
    auto machine_ptr = MachineBuilder()
                           .nodes(nodes)
                           .framesPerNode(4096)
                           .mode(mode)
                           .tune([&](MachineConfig& mc) {
                               mc.cost.ctxSwitchCycles = ctx_cycles;
                           })
                           .build();
    core::Machine& machine = *machine_ptr;

    workloads::BeamConfig cfg;
    cfg.layers = 20;
    cfg.width = 128;
    cfg.seed = 42;
    cfg.threadsPerProcessor =
        mode == ProcessorMode::ContextSwitch ? 4 : 1;

    std::cout << "running beam search: " << nodes << " nodes, mode "
              << toString(mode) << "\n";
    const workloads::BeamResult result = runBeam(machine, cfg);

    std::cout << (result.correct ? "final-layer scores match reference\n"
                                 : "SCORES WRONG\n")
              << "simulated cycles: " << result.elapsed << "\n"
              << "state expansions: " << result.expansions << "\n"
              << "utilization:      "
              << result.report.utilization(nodes) << "\n";
    return result.correct ? 0 : 1;
}
