/**
 * @file
 * The synchronization library in action: the Table 3-2 queued lock, a
 * spin lock, a replicated-sense barrier and a counting semaphore
 * coordinating a producer/consumer pipeline.
 *
 *   $ ./locks [nodes]
 */

#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/context.hpp"
#include "core/sync.hpp"
#include "plus/plus.hpp"
#include "core/workq.hpp"

int
main(int argc, char** argv)
{
    using namespace plus;
    using core::Context;

    const unsigned nodes =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 8;

    auto machine_ptr = MachineBuilder().nodes(nodes).build();
    core::Machine& machine = *machine_ptr;

    std::vector<NodeId> homes(nodes);
    for (NodeId n = 0; n < nodes; ++n) {
        homes[n] = n;
    }

    // A queued lock protecting a shared accumulator.
    core::QueuedLock lock = core::QueuedLock::create(machine, 0, homes);
    const Addr total = machine.alloc(kPageBytes, 0);

    // A barrier separating the two phases, sense page replicated so the
    // spin is local on every node.
    core::Barrier barrier = core::Barrier::create(machine, 0, nodes, true);
    machine.settle();

    // A semaphore-guarded single-slot mailbox between phase-2 pairs.
    core::Semaphore items =
        core::Semaphore::create(machine, 0, 0, homes);
    const Addr mailbox = machine.alloc(kPageBytes, 0);

    for (NodeId n = 0; n < nodes; ++n) {
        machine.spawn(n, [&, n](Context& ctx) {
            core::BarrierWaiter waiter(barrier);

            // Phase 1: every thread adds its contribution under the
            // Table 3-2 queued lock.
            for (int i = 0; i < 5; ++i) {
                lock.acquire(ctx, n);
                const Word v = ctx.read(total);
                ctx.compute(30);
                ctx.write(total, v + n + 1);
                lock.release(ctx);
            }
            waiter.wait(ctx);

            // Phase 2: node 0 produces one item per peer; everyone else
            // consumes exactly one (P blocks until its V arrives).
            if (n == 0) {
                for (NodeId k = 1; k < nodes; ++k) {
                    ctx.write(mailbox + 4 * k, 100 + k);
                }
                ctx.fence(); // all slots visible before any V
                for (NodeId k = 1; k < nodes; ++k) {
                    items.v(ctx);
                }
            } else {
                items.p(ctx, n);
                const Word got = ctx.read(mailbox + 4 * n);
                ctx.compute(got);
            }
        });
    }
    machine.run();

    const Word expected = 5 * nodes * (nodes + 1) / 2;
    std::cout << "locked total = " << machine.peek(total)
              << " (expected " << expected << ")\n"
              << "simulated cycles: " << machine.now() << "\n";
    return machine.peek(total) == expected ? 0 : 1;
}
