/**
 * @file
 * The paper's flagship workload (Section 2.5): parallel single-point
 * shortest path with per-node work queues, work stealing, min-xchng
 * relaxation, and software-requested page replication.
 *
 *   $ ./shortest_path [nodes] [vertices] [replication]
 */

#include <cstdlib>
#include <iostream>

#include "plus/plus.hpp"
#include "workloads/sssp.hpp"

int
main(int argc, char** argv)
{
    using namespace plus;

    const unsigned nodes =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 16;
    const std::uint32_t vertices =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 2048;
    const unsigned replication =
        argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 2;

    auto machine_ptr =
        MachineBuilder().nodes(nodes).framesPerNode(4096).build();
    core::Machine& machine = *machine_ptr;

    workloads::SsspConfig cfg;
    cfg.vertices = vertices;
    cfg.kind = workloads::SsspGraphKind::Grid;
    cfg.replication = replication;
    cfg.seed = 42;

    std::cout << "running SSSP: " << nodes << " nodes, " << vertices
              << " vertices, replication " << replication << "\n";
    const workloads::SsspResult result = runSssp(machine, cfg);

    std::cout << (result.correct ? "distances match Dijkstra\n"
                                 : "DISTANCES WRONG\n")
              << "simulated cycles: " << result.elapsed << "\n"
              << "relaxations:      " << result.relaxations << "\n"
              << "reads  local/remote: " << result.report.localReads
              << "/" << result.report.remoteReads << "\n"
              << "writes local/remote: " << result.report.localWrites
              << "/" << result.report.remoteWrites << "\n"
              << "update messages:     " << result.report.updateMessages
              << "\n"
              << "utilization:         "
              << result.report.utilization(nodes) << "\n";
    return result.correct ? 0 : 1;
}
