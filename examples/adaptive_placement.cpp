/**
 * @file
 * Section 2.4's adaptive policies in one program: a skewed workload is
 * profiled with the hardware reference counters, a placement plan is
 * derived and applied to a second run, and the same workload is also
 * run under the online competitive-replication policy for comparison.
 *
 *   $ ./adaptive_placement [nodes]
 */

#include <cstdlib>
#include <iostream>

#include "core/context.hpp"
#include "core/placement.hpp"
#include "plus/plus.hpp"

namespace {

using namespace plus;
using core::Context;
using core::Machine;

Cycles
runReaders(Machine& m, Addr table, unsigned nodes)
{
    // Every node repeatedly scans a region of a lookup table homed on
    // node 0 — with strong per-node affinity the OS can discover.
    for (NodeId n = 1; n < nodes; ++n) {
        m.spawn(n, [table, n](Context& ctx) {
            for (int pass = 0; pass < 40; ++pass) {
                for (Word w = 0; w < 8; ++w) {
                    ctx.read(table + (n % 4) * kPageBytes + 4 * w);
                }
                ctx.compute(60);
            }
        });
    }
    const Cycles start = m.now();
    m.run();
    return m.now() - start;
}

} // namespace

int
main(int argc, char** argv)
{
    const unsigned nodes =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 8;

    const MachineBuilder builder =
        MachineBuilder().nodes(nodes).framesPerNode(64);

    // --- Run 1: profile ---------------------------------------------------
    auto profiled_ptr = builder.build();
    Machine& profiled = *profiled_ptr;
    const Addr table1 = profiled.alloc(4 * kPageBytes, 0);
    core::AccessProfile::profileEnable(profiled);
    const Cycles t_profiled = runReaders(profiled, table1, nodes);
    const core::AccessProfile profile =
        core::AccessProfile::collect(profiled);
    std::cout << "profiling run: " << t_profiled << " cycles, "
              << profile.total() << " remote references recorded\n";

    // --- Derive and apply the plan -----------------------------------------
    core::PlacementPolicy policy;
    policy.replicateThreshold = 32;
    policy.maxCopies = nodes;
    const core::PlacementPlan plan =
        derivePlan(profiled, profile, policy);
    std::cout << "derived plan: " << plan.replications.size()
              << " replication(s), " << plan.migrations.size()
              << " migration(s)\n";

    auto optimized_ptr = builder.build();
    Machine& optimized = *optimized_ptr;
    const Addr table2 = optimized.alloc(4 * kPageBytes, 0);
    (void)table2;
    applyPlan(optimized, plan);
    const Cycles t_optimized = runReaders(optimized, table2, nodes);
    std::cout << "measurement-driven run: " << t_optimized << " cycles ("
              << static_cast<double>(t_profiled) /
                     static_cast<double>(t_optimized)
              << "x)\n";

    // --- Competitive (online) ------------------------------------------------
    auto competitive_ptr = builder.build();
    Machine& competitive = *competitive_ptr;
    const Addr table3 = competitive.alloc(4 * kPageBytes, 0);
    competitive.enableCompetitiveReplication(/*threshold=*/24,
                                             /*max_copies=*/nodes);
    const Cycles t_competitive = runReaders(competitive, table3, nodes);
    std::cout << "competitive run:        " << t_competitive
              << " cycles ("
              << static_cast<double>(t_profiled) /
                     static_cast<double>(t_competitive)
              << "x)\n";

    return t_optimized < t_profiled ? 0 : 1;
}
