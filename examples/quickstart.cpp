/**
 * @file
 * Quickstart: build a 4-node PLUS machine, allocate shared memory,
 * replicate a page, run threads that communicate through coherent
 * shared memory and delayed interlocked operations, and read the
 * machine-wide statistics.
 *
 *   $ ./quickstart
 */

#include <iostream>

#include "core/context.hpp"
#include "plus/plus.hpp"

int
main()
{
    using namespace plus;

    // 1. Describe the machine with the fluent builder: 4 nodes on a 2x2
    //    mesh, delayed-operation processors, the paper's 1990 cost
    //    model. Every knob has a sane default; chain only what you
    //    need, and build() validates the whole configuration. Add
    //    .protocol(Protocol::WriteInvalidate) to swap the paper's
    //    write-update coherence for its MSI-flavoured counterpart
    //    (docs/PROTOCOLS.md).
    auto machine_ptr = MachineBuilder().nodes(4).build();
    core::Machine& machine = *machine_ptr;

    // 2. Allocate shared memory. The page's master copy lives on node 0;
    //    we replicate it onto node 3 so that node 3's reads are local.
    const Addr counter = machine.alloc(kPageBytes, 0);
    machine.replicate(counter, 3);
    machine.settle(); // let the background page copy finish

    std::cout << "page has " << machine.copyListOf(counter).size()
              << " copies\n";

    // 3. Spawn one thread per node. Each thread atomically increments
    //    the shared counter with fetch-and-add, then does some local
    //    work while a *delayed* fetch-and-add is in flight.
    for (NodeId n = 0; n < machine.nodeCount(); ++n) {
        machine.spawn(n, [counter](core::Context& ctx) {
            // Blocking form: issue + wait for the old value.
            const Word old = ctx.fadd(counter, 1);
            ctx.compute(50);

            // Delayed form: the operation overlaps the computation.
            core::OpHandle h = ctx.issueFadd(counter, 1);
            ctx.compute(200);
            const Word old2 = ctx.verify(h);

            // Plain writes are non-blocking; the fence drains them.
            ctx.write(counter + 8 + 4 * ctx.node(), old + old2);
            ctx.fence();
        });
    }

    // 4. Run to completion.
    machine.run();

    // 5. Inspect the results from the host.
    std::cout << "counter = " << machine.peek(counter) << " (expected "
              << 2 * machine.nodeCount() << ")\n";

    const core::MachineReport report = machine.report();
    std::cout << "simulated cycles: " << report.elapsed << "\n"
              << "local reads:  " << report.localReads << "\n"
              << "remote reads: " << report.remoteReads << "\n"
              << "update messages: " << report.updateMessages << "\n"
              << "total messages:  " << report.totalMessages << "\n"
              << "processor utilization: "
              << report.utilization(machine.nodeCount()) << "\n";
    return machine.peek(counter) == 2 * machine.nodeCount() ? 0 : 1;
}
