#!/usr/bin/env python3
"""profshow — render plus::prof host-time profile JSON as tables.

The profiler (src/telemetry/prof.hpp, docs/OBSERVABILITY.md) writes one
JSON object per run via --prof-out. This script turns it into the two
tables people actually read:

  - per-thread phase breakdown: exclusive milliseconds, call counts and
    percent of the run wall per phase (engine.run, proto.handle,
    par.barrier, ...), plus the {work, barrier-wait, mailbox-drain,
    other} rollup that answers "where does the parallel backend's time
    go";
  - window statistics: how many conservative windows the parallel run
    committed, their width in simulated cycles, events per window and
    mailbox volume — the numbers that explain the barrier percentage.

Usage:
    scripts/profshow.py prof.json [prof2.json ...]
    some_bench --prof-out=/dev/stdout | scripts/profshow.py -

Accepts either a bare prof object or a bench JSON embedding one under a
"prof" key (sim_harness --out) or per-thread-count rollups under
"profile" (BENCH_parallel.json).
"""

import json
import sys


def fmt(value, digits=1):
    if isinstance(value, float):
        return f"{value:,.{digits}f}"
    return f"{value:,}"


def table(rows, header):
    widths = [
        max(len(str(r[i])) for r in [header] + rows)
        for i in range(len(header))
    ]
    def line(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
    out = [line(header), "-" * (sum(widths) + 2 * (len(widths) - 1))]
    out.extend(line(r) for r in rows)
    return "\n".join(out)


def show_prof(prof, label=""):
    if label:
        print(f"== {label} ==")
    wall_ms = prof.get("runWallNs", 0) / 1e6
    print(f"run wall: {fmt(wall_ms, 2)} ms"
          f"   lookahead: {prof.get('lookahead', 0)} cycles")

    rows = []
    for t in prof.get("threads", []):
        first = True
        for phase, d in t.get("phases", {}).items():
            rows.append([
                t["label"] if first else "",
                phase,
                fmt(d["ns"] / 1e6, 2),
                fmt(d["count"]),
                fmt(d["pct"], 1),
            ])
            first = False
        r = t.get("rollup")
        if r:
            rows.append([
                t["label"] if first else "",
                "(rollup)",
                "-",
                "-",
                "work {} / barrier {} / drain {} / other {}".format(
                    fmt(r["workPct"], 1), fmt(r["barrierPct"], 1),
                    fmt(r["drainPct"], 1), fmt(r["otherPct"], 1)),
            ])
    if rows:
        print()
        print(table(rows, ["thread", "phase", "ms", "count", "% wall"]))

    w = prof.get("windows", {})
    if w.get("count", 0) > 0:
        print()
        print(table(
            [[fmt(w["count"]),
              f"{fmt(w['widthMean'], 2)} ({w['widthMin']}..{w['widthMax']})",
              f"{fmt(w['eventsMean'], 2)} ({w['eventsMin']}..{w['eventsMax']})",
              fmt(w["mailSum"])]],
            ["windows", "width (cycles)", "events/window", "mail"]))
    b = prof.get("batches", {})
    if b.get("count", 0) > 0:
        print()
        print(table(
            [[fmt(b["count"]),
              fmt(b["windowsPerBatchMean"], 2),
              fmt(b["eventsPerBatchMean"], 2)]],
            ["batches", "windows/batch", "events/batch"]))
    print()


def show_profile_map(profile):
    """BENCH_parallel.json style: {"<threads>": {rollup, threads, ...}}."""
    for count in sorted(profile, key=lambda k: int(k)):
        p = profile[count]
        batch = ""
        if p.get("batches", 0) > 0:
            batch = (f", {fmt(p['batches'])} batches "
                     f"({fmt(p['windowsPerBatch'], 1)} windows / "
                     f"{fmt(p['eventsPerBatch'], 1)} events each)")
        print(f"== {count} thread(s): {fmt(p['windows'])} windows, "
              f"width mean {fmt(p['widthMean'], 2)} cycles, "
              f"{fmt(p['eventsMean'], 2)} events/window, "
              f"mail {fmt(p['mailSum'])}{batch} ==")
        rows = []
        agg = p.get("rollup")
        if agg:
            rows.append(["(all)", fmt(agg["workPct"], 1),
                         fmt(agg["barrierPct"], 1), fmt(agg["drainPct"], 1),
                         fmt(agg["otherPct"], 1)])
        for label, r in p.get("threads", {}).items():
            rows.append([label, fmt(r["workPct"], 1),
                         fmt(r["barrierPct"], 1), fmt(r["drainPct"], 1),
                         fmt(r["otherPct"], 1)])
        print(table(rows, ["thread", "work %", "barrier %", "drain %",
                           "other %"]))
        print()


def show_file(path):
    if path == "-":
        doc = json.load(sys.stdin)
    else:
        with open(path) as f:
            doc = json.load(f)
    if "threads" in doc and "runWallNs" in doc:
        show_prof(doc, label=path if path != "-" else "")
    elif "prof" in doc:
        show_prof(doc["prof"], label=doc.get("bench", path))
    elif "profile" in doc:
        show_profile_map(doc["profile"])
    else:
        sys.exit(f"{path}: no prof data (want a --prof-out file, a bench "
                 "JSON with a \"prof\" key, or one with \"profile\")")


def main(argv):
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__.strip())
        return 0 if len(argv) >= 2 else 2
    for path in argv[1:]:
        show_file(path)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except BrokenPipeError:  # e.g. piped into head/less
        sys.exit(0)
