#!/usr/bin/env python3
"""pluslint — determinism-contract static analyzer for the PLUS simulator.

The repo's most valuable invariant is that every engine backend (wheel,
heap, parallel at any thread count) produces byte-identical observable
output. scripts/ci.sh verifies that dynamically; pluslint enforces the
*sources* of nondeterminism statically, before a bench has to catch them:

  R1  unordered-iteration   no iteration over std::unordered_map /
                            std::unordered_set — hash order is not part of
                            the contract. Use an ordered container or
                            plus::sortedView() (common/determinism.hpp).
  R2  wall-clock            no std::chrono::{system,steady,high_resolution}
                            _clock, time(), clock(), gettimeofday(),
                            std::random_device, rand()/srand(), or cycle
                            counters (__rdtsc and friends) outside files
                            annotated PLUS_HOST_ONLY("reason").
  R3  pointer-order         no pointer-keyed std::map/std::set and no
                            std::less<T*> — allocation addresses differ run
                            to run, so pointer order is nondeterministic.
  R4  mutable-static        no mutable namespace-scope, static, or
                            thread_local state — hidden global state breaks
                            replay and the parallel backend's isolation.
  R5  env-read              no getenv()/setenv() outside src/common/config —
                            environment inputs go through plus::envRead()
                            so configuration stays auditable in one place.

Suppression is deliberately loud: an inline

    // pluslint: allow(R1) -- <reason>

comment on the finding's line (or the line above) waives exactly the
named rules, and a checked-in baseline (scripts/pluslint_baseline.txt,
refreshed with --update-baseline) grandfathers existing debt. Everything
else fails the lint CI stage.

Frontends: when the clang Python bindings and libclang are importable the
analyzer parses every TU listed in compile_commands.json through
clang.cindex and checks the typed AST. When they are not (the default
container has no libclang C API), a built-in tokenizer frontend performs
the same checks lexically: it tracks type aliases and declarations across
each file's quoted-include closure so member iteration in a .cpp over an
unordered map declared in the .hpp is still caught. Both frontends share
the suppression, baseline, and reporting machinery, and the lint corpus
(tests/lint_corpus) must pass under whichever frontend is active.

Exit status: 0 clean (or fully suppressed/baselined), 1 findings, 2 usage.
"""

import argparse
import hashlib
import json
import os
import re
import sys

RULES = {
    "R1": "unordered-iteration",
    "R2": "wall-clock",
    "R3": "pointer-order",
    "R4": "mutable-static",
    "R5": "env-read",
}

# Files (repo-relative, forward slashes) exempt per rule by construction.
# Prefer inline allow() comments — they carry a reason and stay local; the
# allowlist exists for files that *are* the mechanism a rule mandates.
ALLOWLIST = {
    "R5": {"src/common/config.cpp", "src/common/config.hpp"},
}

UNORDERED_TYPES = {"unordered_map", "unordered_set", "unordered_multimap",
                   "unordered_multiset"}
ORDERED_TYPES = {"map", "set", "multimap", "multiset", "vector", "deque",
                 "list", "array", "span", "string", "flat_map", "flat_set"}
R2_BANNED_IDS = {"system_clock", "steady_clock", "high_resolution_clock",
                 "random_device"}
R2_BANNED_CALLS = {"time", "clock", "rand", "srand", "gettimeofday",
                   "clock_gettime", "timespec_get", "localtime", "gmtime",
                   "__rdtsc", "__builtin_ia32_rdtsc", "__builtin_readcyclecounter"}
R5_BANNED_CALLS = {"getenv", "secure_getenv", "setenv", "putenv", "unsetenv"}
R4_SKIP_STARTERS = {"using", "typedef", "namespace", "template", "friend",
                    "static_assert", "extern", "struct", "class", "union",
                    "enum", "concept", "public", "private", "protected",
                    "typename", "asm", "export", "if", "else", "for",
                    "while", "do", "switch", "case", "return", "goto",
                    "break", "continue", "try", "catch", "throw", "delete",
                    "new", "co_return", "co_await", "co_yield", "default"}

ALLOW_RE = re.compile(
    r"pluslint:\s*allow\(\s*(R[0-9](?:\s*,\s*R[0-9])*)\s*\)\s*(--\s*\S.*)?")
SUFFIXES = (".cpp", ".cc", ".cxx", ".hpp", ".hh", ".hxx", ".h")


class Finding:
    __slots__ = ("rule", "path", "line", "message", "line_text")

    def __init__(self, rule, path, line, message, line_text=""):
        self.rule = rule
        self.path = path  # repo-relative, forward slashes
        self.line = line
        self.message = message
        self.line_text = line_text

    def key(self):
        return (self.path, self.line, self.rule)

    def fingerprint(self):
        norm = re.sub(r"\s+", "", self.line_text)
        digest = hashlib.sha1(
            f"{self.rule}|{self.path}|{norm}".encode()).hexdigest()
        return digest[:12]

    def render(self):
        return (f"{self.path}:{self.line}: [{self.rule}] {self.message} "
                f"({RULES[self.rule]})")


# --------------------------------------------------------------------------
# Tokenizer (shared: the fallback frontend, allow-comment scanning, and
# the PLUS_HOST_ONLY file-annotation check all run on this).
# --------------------------------------------------------------------------

TOKEN_RE = re.compile(r"""
      (?P<ws>\s+)
    | (?P<comment>//[^\n]*|/\*.*?\*/)
    | (?P<str>"(?:[^"\\\n]|\\.)*"|R"\((?:.|\n)*?\)")
    | (?P<char>'(?:[^'\\\n]|\\.)*')
    | (?P<num>(?:0[xXbB])?[0-9][0-9a-fA-F'.uUlLzZ+-]*(?<![+-]))
    | (?P<id>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<punct>::|->|<=>|<<=|>>=|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\||[{}()\[\]<>;:,.*&=+\-/%!~^|?\#])
""", re.VERBOSE | re.DOTALL)


class Tok:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return f"{self.kind}:{self.text}@{self.line}"


class SourceFile:
    """One tokenized source file: code tokens, comments, and includes."""

    def __init__(self, path, text):
        self.path = path
        self.lines = text.split("\n")
        self.tokens = []       # code tokens, preprocessor lines excluded
        self.comments = {}     # line -> [comment text] (block: every line)
        self.includes = []     # quoted include operands, as written
        self.host_only = False
        self._lex(text)

    def _lex(self, text):
        # Fold line continuations so directive detection sees whole lines.
        directive_lines = set()
        for i, line in enumerate(self.lines, start=1):
            if line.lstrip().startswith("#"):
                directive_lines.add(i)
                m = re.match(r'\s*#\s*include\s*"([^"]+)"', line)
                if m:
                    self.includes.append(m.group(1))
        line = 1
        for m in TOKEN_RE.finditer(text):
            kind = m.lastgroup
            tok = m.group()
            start_line = line
            line += tok.count("\n")
            if kind == "ws":
                continue
            if kind == "comment":
                for ln in range(start_line, line + 1):
                    self.comments.setdefault(ln, []).append(tok)
                continue
            if start_line in directive_lines:
                continue
            self.tokens.append(Tok(kind, tok, start_line))
        toks = self.tokens
        self.host_only = any(
            t.text == "PLUS_HOST_ONLY" and i + 1 < len(toks)
            and toks[i + 1].text == "(" for i, t in enumerate(toks))

    def allows(self, line, rule):
        """True if an allow(rule) comment covers `line`: on the line
        itself, or in the contiguous comment block directly above it."""
        candidates = [line]
        ln = line - 1
        while 0 < ln <= len(self.lines) and \
                self.lines[ln - 1].lstrip().startswith(("//", "/*", "*")):
            candidates.append(ln)
            ln -= 1
        for ln in candidates:
            for comment in self.comments.get(ln, ()):
                m = ALLOW_RE.search(comment)
                if not m:
                    continue
                rules = {r.strip() for r in m.group(1).split(",")}
                if rule in rules and m.group(2):
                    return True
        return False


# --------------------------------------------------------------------------
# Token frontend
# --------------------------------------------------------------------------

def skip_template_args(toks, i):
    """toks[i] == '<': return index just past the matching '>'."""
    depth = 0
    while i < len(toks):
        t = toks[i].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif t == ">>":
            depth -= 2
            if depth <= 0:
                return i + 1
        elif t in (";", "{"):
            return i  # malformed / not really template args
        i += 1
    return i


def collect_decls(src, unordered, ordered, unordered_fns, aliases,
                  unordered_elem):
    """Record names declared with unordered / ordered container types.

    Walks the token stream looking at each appearance of a container type
    (or a recorded alias of one) and scans forward past the template
    arguments to the declarator: `name ;`, `name =`, `name {` record a
    variable/member, `& name (` or `name (` record a function returning
    the container. `using Alias = std::unordered_map<...>` records an
    alias that later declarations resolve through.
    """
    toks = src.tokens
    i = 0
    while i < len(toks):
        t = toks[i]
        if t.kind != "id":
            i += 1
            continue
        is_unordered = (t.text in UNORDERED_TYPES
                        or aliases.get(t.text) == "unordered")
        is_ordered = (t.text in ORDERED_TYPES
                      or aliases.get(t.text) == "ordered")
        if t.text in ORDERED_TYPES:
            # Require the std:: qualifier for the short generic names so a
            # project type called `set` or a member `list` cannot match.
            if not (i >= 2 and toks[i - 1].text == "::"
                    and toks[i - 2].text == "std"):
                is_ordered = False
        if not (is_unordered or is_ordered):
            i += 1
            continue
        flavor = "unordered" if is_unordered else "ordered"
        # `using Alias = <container>` (scan back past std:: qualifiers).
        j = i
        while j >= 2 and toks[j - 1].text in ("::", "std"):
            j -= 1
        if j >= 2 and toks[j - 1].text == "=" and toks[j - 2].kind == "id" \
                and j >= 3 and toks[j - 3].text == "using":
            aliases[toks[j - 2].text] = flavor
        k = i + 1
        if k < len(toks) and toks[k].text == "<":
            k = skip_template_args(toks, k)
        # Skip cv/ref/ptr declarator decoration.
        saw_ref = False
        while k < len(toks) and toks[k].text in ("&", "*", "const", "&&"):
            saw_ref = saw_ref or toks[k].text in ("&", "&&")
            k += 1
        names = []
        is_fn = False
        while k < len(toks) and toks[k].kind == "id":
            name = toks[k].text
            k += 1
            if k < len(toks) and toks[k].text == "(":
                is_fn = True
                names.append(name)
                break
            if k < len(toks) and toks[k].text in (";", "=", "{", ","):
                names.append(name)
                if toks[k].text == ",":
                    k += 1
                    continue
            break
        target = unordered if flavor == "unordered" else ordered
        # An ordered container *of* unordered containers (e.g.
        # std::vector<std::unordered_map<...>>): its elements — and thus
        # the loop variable of a range-for over it — are unordered.
        nested_unordered = flavor == "ordered" and any(
            t.text in UNORDERED_TYPES for t in toks[i + 1:k])
        for name in names:
            if is_fn:
                if flavor == "unordered" and saw_ref:
                    unordered_fns.add(name)
            else:
                target.add(name)
                if nested_unordered:
                    unordered_elem.add(name)
        i += 1


def loop_var_name(toks, i, expr):
    """toks[i] == 'for': name of the range-for's loop variable, or None
    for structured bindings (whose components are not containers)."""
    j = i + 2  # past 'for ('
    names = []
    while j < len(toks) and toks[j] is not expr[0]:
        if toks[j].text == "[":
            return None
        if toks[j].kind == "id" and toks[j].text not in (
                "const", "auto", "mutable"):
            names.append(toks[j].text)
        j += 1
    return names[-1] if names else None


def range_for_expr(toks, i):
    """toks[i] == 'for': return (expr_tokens, line) for a range-for."""
    if i + 1 >= len(toks) or toks[i + 1].text != "(":
        return None
    depth = 0
    colon = None
    j = i + 1
    while j < len(toks):
        t = toks[j].text
        if t == "(":
            depth += 1
        elif t == ")":
            depth -= 1
            if depth == 0:
                break
        elif t == ":" and depth == 1 and colon is None:
            colon = j
        elif t == ";" and depth == 1:
            return None  # classic for loop
        j += 1
    if colon is None or j >= len(toks):
        return None
    return toks[colon + 1:j], toks[i].line


def lint_tokens_file(src, table, rel, findings):
    unordered, ordered, unordered_fns, unordered_elem = table
    toks = src.tokens
    # Loop variables bound to unordered elements of an ordered container
    # (outer `for (auto& x : vec_of_umaps)` makes `x` unordered below).
    loop_unordered = set()

    def add(rule, line, message):
        if rel in ALLOWLIST.get(rule, ()):
            return
        text = src.lines[line - 1] if 0 < line <= len(src.lines) else ""
        findings.append(Finding(rule, rel, line, message, text))

    ambiguous = unordered & ordered
    flag_vars = unordered - ambiguous

    for i, t in enumerate(toks):
        nxt = toks[i + 1].text if i + 1 < len(toks) else ""
        prv = toks[i - 1].text if i > 0 else ""

        # ---- R1: iteration over unordered containers ------------------
        if t.text == "for":
            got = range_for_expr(toks, i)
            if got and any(e.text == "sortedView" for e in got[0]):
                got = None  # plus::sortedView() makes the order defined
            if got:
                expr, line = got
                for k, e in enumerate(expr):
                    if e.kind != "id":
                        continue
                    enxt = expr[k + 1].text if k + 1 < len(expr) else ""
                    if e.text in flag_vars or e.text in loop_unordered or \
                            e.text in UNORDERED_TYPES or \
                            (e.text in unordered_fns and enxt == "("):
                        add("R1", line,
                            f"range-for over unordered container "
                            f"'{e.text}' — hash order is not "
                            f"deterministic; use an ordered container or "
                            f"plus::sortedView()")
                        break
                    if e.text in unordered_elem:
                        # Iterating the ordered outer container is fine,
                        # but its loop variable is an unordered container.
                        var = loop_var_name(toks, i, expr)
                        if var:
                            loop_unordered.add(var)
                        break
        if t.kind == "id" and t.text in ("begin", "cbegin") and \
                nxt == "(" and prv in (".", "->") and i >= 2:
            base = toks[i - 2]
            if base.kind == "id" and (base.text in flag_vars
                                      or base.text in loop_unordered):
                add("R1", t.line,
                    f"iterator walk of unordered container '{base.text}' "
                    f"— hash order is not deterministic; use an ordered "
                    f"container or plus::sortedView()")

        # ---- R2: wall-clock / host entropy ----------------------------
        if not src.host_only and t.kind == "id":
            if t.text in R2_BANNED_IDS:
                add("R2", t.line,
                    f"'{t.text}' is host nondeterminism; simulated time "
                    f"comes from sim::Engine::now() — or annotate the "
                    f"file PLUS_HOST_ONLY(\"reason\")")
            elif t.text in R2_BANNED_CALLS and nxt == "(" and \
                    prv not in (".", "->"):
                add("R2", t.line,
                    f"call to '{t.text}()' reads the host clock/entropy; "
                    f"use sim::Engine::now() / common/rng.hpp — or "
                    f"annotate the file PLUS_HOST_ONLY(\"reason\")")

        # ---- R3: pointer-keyed ordered containers ---------------------
        if t.kind == "id" and nxt == "<" and (
                t.text in ("map", "set", "multimap", "multiset", "less")
                and prv == "::" and i >= 2 and toks[i - 2].text == "std"):
            end = skip_template_args(toks, i + 1)
            depth = 0
            first_arg = []
            for k in range(i + 1, end):
                tt = toks[k].text
                if tt == "<":
                    depth += 1
                elif tt in (">", ">>"):
                    depth -= 2 if tt == ">>" else 1
                elif tt == "," and depth == 1:
                    break
                if depth >= 1:
                    first_arg.append(toks[k])
            if any(a.text == "*" for a in first_arg):
                add("R3", t.line,
                    f"std::{t.text} keyed/ordered by pointer value — "
                    f"allocation addresses differ run to run; key by a "
                    f"stable id (NodeId, Vpn, tag) instead")

        # ---- R5: environment reads ------------------------------------
        if t.kind == "id" and t.text in R5_BANNED_CALLS and nxt == "(" and \
                prv not in (".", "->"):
            add("R5", t.line,
                f"'{t.text}()' outside common/config — route the read "
                f"through plus::envRead() so configuration inputs stay "
                f"auditable in one place")

    # ---- R4: mutable namespace-scope / static state -------------------
    lint_mutable_state(src, rel, add)


def lint_mutable_state(src, rel, add):
    """Scope-tracking scan for R4.

    Namespace scopes are transparent; class/function/initializer braces
    are opaque. At transparent scope every `;`/`{`-terminated statement is
    examined; inside opaque scopes only `static`/`thread_local`
    declarations are (function-local statics, static data members).
    """
    toks = src.tokens
    scopes = []  # "ns" (transparent) or "opaque"
    stmt = []    # tokens of the statement being accumulated

    def transparent():
        return all(s == "ns" for s in scopes)

    def classify_brace():
        texts = [t.text for t in stmt]
        if "namespace" in texts:
            return "ns"
        return "opaque"

    def examine(terminator):
        if not stmt:
            return
        texts = [t.text for t in stmt]
        is_static = "static" in texts or "thread_local" in texts
        if not transparent() and not is_static:
            return
        first = texts[0]
        if first in R4_SKIP_STARTERS or stmt[0].kind not in ("id",):
            # `using`, type definitions, control flow, labels…  A statement
            # starting with anything but an identifier is not a plain
            # variable declaration.
            if not (is_static and first in ("static", "thread_local")):
                return
        if any(t in ("const", "constexpr", "constinit") for t in texts):
            return
        if "(" in texts:
            return  # function declaration/definition or paren-init
        if terminator == "{" and "=" not in texts and first in (
                "static", "thread_local"):
            pass  # `static Foo x{...};`
        body = [t for t in stmt if t.text not in (
            "static", "thread_local", "inline", "mutable")]
        if len(body) < 2:
            return
        # The declared name: last identifier before the initializer.
        declarator = body
        if "=" in texts:
            declarator = body[:[t.text for t in body].index("=")]
        name = next((t.text for t in reversed(declarator)
                     if t.kind == "id"), texts[0])
        decl_kind = ("thread_local" if "thread_local" in texts
                     else "static" if "static" in texts
                     else "namespace-scope")
        add("R4", stmt[0].line,
            f"mutable {decl_kind} state '{name}' — hidden global state "
            f"breaks replay and parallel-domain isolation; make it "
            f"const/constexpr, move it into the owning object, or "
            f"allow() it with a reason")

    for t in toks:
        if t.text == "{":
            examine("{")
            scopes.append(classify_brace())
            stmt = []
        elif t.text == "}":
            if scopes:
                scopes.pop()
            stmt = []
        elif t.text == ";":
            examine(";")
            stmt = []
        else:
            stmt.append(t)


def build_symbol_table(path, root, cache, visited=None):
    """Union of container declarations over `path` + its quoted-include
    closure (resolved against the repo's src/ include root)."""
    if visited is None:
        visited = set()
    rp = os.path.realpath(path)
    if rp in visited:
        return set(), set(), set(), set()
    visited.add(rp)
    src = load_source(path, cache)
    if src is None:
        return set(), set(), set(), set()
    unordered, ordered, fns, elems = set(), set(), set(), set()
    aliases = {}
    collect_decls(src, unordered, ordered, fns, aliases, elems)
    for inc in src.includes:
        for base in (os.path.join(root, "src"), os.path.dirname(path)):
            cand = os.path.join(base, inc)
            if os.path.isfile(cand):
                u2, o2, f2, e2 = build_symbol_table(cand, root, cache,
                                                    visited)
                unordered |= u2
                ordered |= o2
                fns |= f2
                elems |= e2
                break
    return unordered, ordered, fns, elems


def load_source(path, cache):
    rp = os.path.realpath(path)
    if rp not in cache:
        try:
            with open(path, encoding="utf-8", errors="replace") as fh:
                cache[rp] = SourceFile(path, fh.read())
        except OSError:
            cache[rp] = None
    return cache[rp]


def run_token_frontend(files, root, verbose):
    findings = []
    cache = {}
    for path in files:
        rel = relpath(path, root)
        src = load_source(path, cache)
        if src is None:
            continue
        table = build_symbol_table(path, root, cache)
        if verbose:
            print(f"  tokens: {rel} "
                  f"(unordered symbols: {sorted(table[0] | table[2])})",
                  file=sys.stderr)
        lint_tokens_file(src, table, rel, findings)
    # Apply inline suppressions.
    kept = []
    for f in findings:
        src = load_source(os.path.join(root, f.path), cache)
        if src is not None and src.allows(f.line, f.rule):
            continue
        kept.append(f)
    return kept


# --------------------------------------------------------------------------
# clang.cindex frontend
# --------------------------------------------------------------------------

UNORDERED_TYPE_RE = re.compile(r"\bunordered_(map|set|multimap|multiset)\b")
PTR_KEY_RE = re.compile(
    r"\bstd::(map|set|multimap|multiset|less)<[^,<>]*\*")


def run_clang_frontend(files, root, ccdb_path, verbose):
    """Typed-AST checks via libclang. Returns findings, or None when the
    bindings/library are unavailable (caller falls back to tokens)."""
    try:
        from clang import cindex
    except ImportError:
        return None
    try:
        index = cindex.Index.create()
    except Exception as exc:  # noqa: BLE001 — any load failure => fallback
        if verbose:
            print(f"  clang: libclang unavailable ({exc})", file=sys.stderr)
        return None

    args_by_file = {}
    if ccdb_path and os.path.isfile(ccdb_path):
        try:
            for entry in json.load(open(ccdb_path, encoding="utf-8")):
                fp = os.path.realpath(
                    os.path.join(entry.get("directory", "."),
                                 entry["file"]))
                raw = entry.get("arguments") or entry.get("command",
                                                          "").split()
                args = [a for a in raw[1:]
                        if not a.endswith((".cpp", ".o", ".cc"))
                        and a not in ("-c", "-o")]
                args_by_file[fp] = args
        except (OSError, ValueError, KeyError):
            pass
    default_args = ["-std=c++20", f"-I{os.path.join(root, 'src')}",
                    f"-I{os.path.join(root, 'include')}"]

    wanted = {os.path.realpath(p) for p in files}
    findings = {}
    cache = {}

    def add(rule, loc, message):
        if loc.file is None:
            return
        fp = os.path.realpath(loc.file.name)
        if fp not in wanted:
            return
        rel = relpath(fp, root)
        if rel in ALLOWLIST.get(rule, ()):
            return
        src = load_source(fp, cache)
        if src is not None and src.allows(loc.line, rule):
            return
        text = ""
        if src is not None and 0 < loc.line <= len(src.lines):
            text = src.lines[loc.line - 1]
        f = Finding(rule, rel, loc.line, message, text)
        findings[f.key()] = f

    def visit(cursor, host_only):
        kind = cursor.kind
        K = cindex.CursorKind
        if kind == K.CXX_FOR_RANGE_STMT:
            for child in cursor.get_children():
                spelling = child.type.spelling if child.type else ""
                if UNORDERED_TYPE_RE.search(spelling):
                    add("R1", cursor.location,
                        "range-for over unordered container of type "
                        f"'{spelling}' — use an ordered container or "
                        "plus::sortedView()")
                    break
        elif kind in (K.DECL_REF_EXPR, K.TYPE_REF):
            name = cursor.spelling.split("::")[-1]
            if name in R2_BANNED_IDS and not host_only:
                add("R2", cursor.location,
                    f"'{name}' is host nondeterminism; use "
                    "sim::Engine::now() or annotate PLUS_HOST_ONLY")
        elif kind == K.CALL_EXPR:
            name = cursor.spelling
            if name in R2_BANNED_CALLS and not host_only:
                add("R2", cursor.location,
                    f"call to '{name}()' reads host clock/entropy; use "
                    "sim::Engine::now() / common/rng.hpp or annotate "
                    "PLUS_HOST_ONLY")
            elif name in R5_BANNED_CALLS:
                add("R5", cursor.location,
                    f"'{name}()' outside common/config — route through "
                    "plus::envRead()")
        elif kind in (K.VAR_DECL, K.FIELD_DECL):
            spelling = cursor.type.spelling if cursor.type else ""
            if PTR_KEY_RE.search(spelling):
                add("R3", cursor.location,
                    f"'{spelling}' orders by pointer value — key by a "
                    "stable id instead")
            if kind == K.VAR_DECL:
                parent = cursor.semantic_parent
                ns_scope = parent is not None and parent.kind in (
                    K.TRANSLATION_UNIT, K.NAMESPACE)
                static = cursor.storage_class == \
                    cindex.StorageClass.STATIC
                toks = {t.spelling for t in cursor.get_tokens()}
                is_const = (cursor.type.is_const_qualified()
                            or "constexpr" in toks or "constinit" in toks
                            or "const" in toks)
                if (ns_scope or static or "thread_local" in toks) \
                        and not is_const:
                    add("R4", cursor.location,
                        f"mutable {'static ' if static else ''}state "
                        f"'{cursor.spelling}' at namespace/static scope")
        for child in cursor.get_children():
            visit(child, host_only)

    parsed_any = False
    for path in files:
        if not path.endswith((".cpp", ".cc", ".cxx")):
            continue  # headers are linted through the TUs that pull them in
        rp = os.path.realpath(path)
        args = args_by_file.get(rp, default_args)
        try:
            tu = index.parse(rp, args=args)
        except Exception:  # noqa: BLE001
            continue
        parsed_any = True
        src = load_source(rp, cache)
        host_only = src.host_only if src else False
        visit(tu.cursor, host_only)
    if not parsed_any:
        return None
    # Headers never included by any TU still need the lexical checks.
    header_only = [p for p in files
                   if not p.endswith((".cpp", ".cc", ".cxx"))]
    if header_only:
        for f in run_token_frontend(header_only, root, False):
            findings.setdefault(f.key(), f)
    return list(findings.values())


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def relpath(path, root):
    return os.path.relpath(os.path.realpath(path),
                           os.path.realpath(root)).replace(os.sep, "/")


def enumerate_files(paths):
    files = []
    for p in paths:
        if os.path.isdir(p):
            for dirpath, _dirnames, filenames in os.walk(p):
                for name in sorted(filenames):
                    if name.endswith(SUFFIXES):
                        files.append(os.path.join(dirpath, name))
        elif os.path.isfile(p):
            files.append(p)
        else:
            print(f"pluslint: no such file or directory: {p}",
                  file=sys.stderr)
            sys.exit(2)
    return sorted(set(files))


def load_baseline(path):
    entries = set()
    if path and os.path.isfile(path):
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line and not line.startswith("#"):
                    entries.add(tuple(line.split()))
    return entries


def main(argv):
    root_default = os.path.dirname(
        os.path.dirname(os.path.realpath(__file__)))
    ap = argparse.ArgumentParser(
        prog="pluslint",
        description="determinism-contract static analyzer "
                    "(rules R1-R5; see docs/STATIC_ANALYSIS.md)")
    ap.add_argument("paths", nargs="*",
                    help="files/directories to lint (default: src/)")
    ap.add_argument("--root", default=root_default,
                    help="repo root for relative paths and src/ includes")
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json for the clang frontend "
                         "(default: <root>/build/compile_commands.json)")
    ap.add_argument("--baseline", default=None,
                    help="baseline file (default: "
                         "<root>/scripts/pluslint_baseline.txt)")
    ap.add_argument("--no-baseline", action="store_true",
                    help="ignore the baseline (report all findings)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline with the current findings")
    ap.add_argument("--frontend", choices=("auto", "clang", "tokens"),
                    default="auto")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args(argv)

    root = os.path.realpath(args.root)
    paths = args.paths or [os.path.join(root, "src")]
    files = enumerate_files(paths)
    if not files:
        print("pluslint: nothing to lint", file=sys.stderr)
        return 2
    ccdb = args.compile_commands or os.path.join(
        root, "build", "compile_commands.json")

    findings = None
    frontend = "tokens"
    if args.frontend in ("auto", "clang"):
        try:
            findings = run_clang_frontend(files, root, ccdb, args.verbose)
        except Exception as exc:  # noqa: BLE001 — never die on the AST path
            print(f"pluslint: clang frontend failed ({exc}); "
                  "falling back to the token frontend", file=sys.stderr)
            findings = None
        if findings is not None:
            frontend = "clang"
        elif args.frontend == "clang":
            print("pluslint: clang.cindex/libclang not usable here",
                  file=sys.stderr)
            return 2
    if findings is None:
        findings = run_token_frontend(files, root, args.verbose)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))

    baseline_path = args.baseline or os.path.join(
        root, "scripts", "pluslint_baseline.txt")
    if args.update_baseline:
        with open(baseline_path, "w", encoding="utf-8") as fh:
            fh.write("# pluslint baseline — grandfathered findings.\n"
                     "# Regenerate with scripts/pluslint.py "
                     "--update-baseline; shrink it, never grow it.\n"
                     "# Format: <rule> <path> <fingerprint>\n")
            for f in findings:
                fh.write(f"{f.rule} {f.path} {f.fingerprint()}\n")
        print(f"pluslint: baseline updated with {len(findings)} "
              f"finding(s) -> {baseline_path}")
        return 0

    baseline = set() if args.no_baseline else load_baseline(baseline_path)
    fresh = [f for f in findings
             if (f.rule, f.path, f.fingerprint()) not in baseline]
    suppressed = len(findings) - len(fresh)

    for f in fresh:
        print(f.render())
    tail = (f"pluslint[{frontend}]: {len(files)} file(s), "
            f"{len(fresh)} finding(s)")
    if suppressed:
        tail += f", {suppressed} baselined"
    print(tail, file=sys.stderr)
    return 1 if fresh else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
