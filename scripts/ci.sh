#!/usr/bin/env bash
# Continuous-integration driver for the PLUS simulator.
#
#   1. tier-1:     regular build + full test suite
#   2. sanitize:   ASan+UBSan build (PLUS_SANITIZE=ON) + full test suite
#   3. tidy:       clang-tidy over src/ — FATAL when the tool is present
#                  (per-file exit codes aggregated; one failing TU fails
#                  the stage), skipped with a warning when it is absent
#   4. lint:       scripts/pluslint.py determinism-contract analysis over
#                  src/ (rules R1-R5, see docs/STATIC_ANALYSIS.md); fails
#                  on any unbaselined finding, then self-tests the linter
#                  against the known-bad corpus in tests/lint_corpus
#   5. format:     clang-format --dry-run --Werror over src/ and include/
#                  (skipped with a warning when the tool is absent)
#   6. trace:      telemetry smoke test — run a 4-node workload with
#                  --trace-out/--stats-out, validate both as JSON, and
#                  check that tracing leaves bench output bit-identical
#   7. determinism: every engine backend must produce byte-for-byte
#                  identical bench output — the full matrix is
#                  {wheel, heap, parallel x 2 threads, parallel x 4
#                  threads} x {update, invalidate} diffed against the
#                  wheel run of the same protocol
#   8. protocols:  per-protocol suites — tests/test_protocol, then
#                  bench/protocol_shootout (both protocols, checker on,
#                  each must win at least one sharing pattern) with the
#                  JSON output schema validated
#   9. perf-smoke: engine_throughput --quick, fail if the wheel's
#                  throughput regressed >25% vs the committed
#                  BENCH_engine.json or the speedup target is missed;
#                  also gate the parallel backend against
#                  BENCH_parallel.json (fail on >25% regression at any
#                  thread count; core-gated scaling floors: >=1.0x at
#                  2 threads on >=2 cores, >=2.5x at 8 threads on
#                  >=8 cores)
#  10. chaos:      chaos_sweep under fixed fault seeds (drop 1%, dup 1%,
#                  corrupt 0.5%, mixed + transient link kill) — every
#                  run must reproduce the fault-free memory image, and
#                  with the injector disabled bench output must stay
#                  byte-identical to the committed golden/ files under
#                  both engine backends
#  11. recovery:   node-crash chaos matrix — the recovery unit tests,
#                  then chaos_sweep --kill-node on wheel and
#                  parallel x 2 threads; every run must leave the
#                  surviving replicas mutually consistent and the
#                  post-recovery image hash byte-identical across
#                  backends
#  12. tsan:       ThreadSanitizer build (PLUS_TSAN=ON) — the parallel
#                  engine's tests plus the 2/4-thread determinism matrix
#                  must run with zero TSan reports (skipped with a
#                  warning when the toolchain lacks -fsanitize=thread)
#  13. prof:       host-time profiler gates — a profiled parallel run
#                  must attribute >=90% of each thread's wall clock
#                  across {work, barrier, drain, other}, and the
#                  profiler-off overhead on the serial wheel micro
#                  benchmark must stay under 3% (best of 3)
#
# Usage: scripts/ci.sh [tier1|sanitize|tidy|lint|format|trace|determinism|
#                       protocols|perf-smoke|chaos|recovery|tsan|prof|all]
#                      (default: all)

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
STAGE="${1:-all}"

# Sanitizer dispositions are exported process-wide so every child —
# ctest *and* the bench binaries the later stages run out of whatever
# build tree is current — aborts on the first report instead of printing
# and carrying on.
export ASAN_OPTIONS="abort_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export TSAN_OPTIONS="halt_on_error=1:abort_on_error=1:second_deadlock_stack=1"

run_tier1() {
    echo "=== tier-1: build + ctest ==="
    cmake -B build -S . >/dev/null
    cmake --build build -j "$JOBS"
    ctest --test-dir build --output-on-failure -j "$JOBS"
}

run_sanitize() {
    echo "=== sanitize: ASan+UBSan build + ctest ==="
    cmake -B build-asan -S . -DPLUS_SANITIZE=ON >/dev/null
    cmake --build build-asan -j "$JOBS"
    ctest --test-dir build-asan --output-on-failure -j "$JOBS"
}

run_tidy() {
    echo "=== tidy: clang-tidy over src/ (fatal) ==="
    if ! command -v clang-tidy >/dev/null 2>&1; then
        echo "WARNING: clang-tidy not installed; stage skipped"
        return 0
    fi
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    local out
    out="$(mktemp -d)"
    trap 'rm -rf "$out"' RETURN
    # One clang-tidy invocation per TU so every exit code is observed;
    # failures are aggregated in a file (xargs batching with -n 8 hid
    # per-file status on xargs implementations that only report 123).
    find src -name '*.cpp' -print0 |
        xargs -0 -P "$JOBS" -I{} sh -c \
            'clang-tidy -p build --quiet "$1" || echo "$1" >> "$2"' \
            _ {} "$out/failed"
    if [ -s "$out/failed" ]; then
        echo "clang-tidy FAILED for:"
        sort "$out/failed" | sed 's/^/  - /'
        return 1
    fi
    echo "clang-tidy clean over $(find src -name '*.cpp' | wc -l) TUs"
}

run_lint() {
    echo "=== lint: pluslint determinism contract over src/ ==="
    # compile_commands.json lets the clang frontend (when libclang is
    # available) parse each TU with its real flags; the token frontend
    # needs no build at all, so the stage degrades gracefully.
    if command -v cmake >/dev/null 2>&1; then
        cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
            >/dev/null 2>&1 || true
    fi
    python3 scripts/pluslint.py
    echo "--- linter self-test against tests/lint_corpus"
    python3 tests/lint_corpus/driver.py
}

run_format() {
    echo "=== format: clang-format check over src/ + include/ ==="
    if ! command -v clang-format >/dev/null 2>&1; then
        echo "WARNING: clang-format not installed; stage skipped"
        return 0
    fi
    find src include -name '*.cpp' -o -name '*.hpp' | sort |
        xargs clang-format --dry-run --Werror
    echo "clang-format clean"
}

run_trace() {
    echo "=== trace: telemetry export smoke test ==="
    cmake -B build -S . >/dev/null
    cmake --build build -j "$JOBS" --target sim_harness table_3_1
    local out
    out="$(mktemp -d)"
    trap 'rm -rf "$out"' RETURN

    build/bench/sim_harness --nodes=4 \
        --trace-out="$out/trace.json" --stats-out="$out/stats.json"
    python3 - "$out/trace.json" "$out/stats.json" <<'EOF'
import json, sys
trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
assert events, "empty trace"
assert any(e.get("ph") == "s" for e in events), "no flow events"
assert any(e.get("pid", 0) >= 1000 for e in events), "no link tracks"
stats = json.load(open(sys.argv[2]))
assert stats["metrics"]["counters"], "no counters"
assert stats["traffic"]["perLink"], "no link traffic"
print(f"trace OK: {len(events)} events")
EOF

    # Telemetry must never perturb the simulation.
    build/bench/table_3_1 > "$out/plain.txt"
    build/bench/table_3_1 --trace-out="$out/t.json" \
        --stats-out="$out/s.json" > "$out/traced.txt"
    diff "$out/plain.txt" "$out/traced.txt"
    echo "bench output bit-identical with telemetry enabled"
}

run_determinism() {
    echo "=== determinism: backend x protocol matrix, byte-for-byte ==="
    cmake -B build -S . >/dev/null
    cmake --build build -j "$JOBS" --target sim_harness table_3_1
    local out
    out="$(mktemp -d)"
    trap 'rm -rf "$out"' RETURN

    # Every backend/thread-count combination must reproduce the wheel
    # output exactly, under both coherence protocols (byte-identity is
    # per protocol: update and invalidate legitimately differ from each
    # other, see docs/PROTOCOLS.md). The parallel runs force --threads
    # so the conservative engine really spins up worker domains even on
    # single-core CI hosts (oversubscribed but functionally identical).
    local proto combo
    for proto in update invalidate; do
        build/bench/table_3_1 --engine=wheel --protocol="$proto" \
            > "$out/wheel_table.txt"
        build/bench/sim_harness --nodes=16 --engine=wheel \
            --protocol="$proto" > "$out/wheel_harness.txt"
        for combo in "heap:0" "parallel:2" "parallel:4"; do
            local eng="${combo%%:*}" thr="${combo##*:}"
            local flags="--engine=$eng --protocol=$proto"
            if [ "$thr" != 0 ]; then flags="$flags --threads=$thr"; fi
            echo "--- $proto: $eng threads=$thr vs wheel"
            # shellcheck disable=SC2086
            build/bench/table_3_1 $flags > "$out/table.txt"
            diff "$out/wheel_table.txt" "$out/table.txt"
            # shellcheck disable=SC2086
            build/bench/sim_harness --nodes=16 $flags > "$out/harness.txt"
            diff "$out/wheel_harness.txt" "$out/harness.txt"
        done
    done
    echo "all engine backends are cycle-for-cycle identical per protocol"
}

run_protocols() {
    echo "=== protocols: per-protocol suites + the shootout gate ==="
    cmake -B build -S . >/dev/null
    cmake --build build -j "$JOBS" --target test_protocol protocol_shootout
    build/tests/test_protocol
    local out
    out="$(mktemp -d)"
    trap 'rm -rf "$out"' RETURN
    # The shootout runs every sharing pattern under both protocols with
    # the per-protocol invariant checker on, and exits non-zero unless
    # each protocol wins at least one pattern.
    build/bench/protocol_shootout --out="$out/protocols.json"
    python3 - "$out/protocols.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
winners = {p["winner"] for p in d["patterns"].values()}
assert winners == {"write-update", "write-invalidate"}, winners
print(f"shootout JSON OK: {len(d['patterns'])} patterns, both protocols win")
EOF
}

run_perf_smoke() {
    echo "=== perf-smoke: engine throughput vs committed baseline ==="
    cmake -B build -S . >/dev/null
    cmake --build build -j "$JOBS" --target engine_throughput
    local out
    out="$(mktemp -d)"
    trap 'rm -rf "$out"' RETURN

    # The wheel micro is load-sensitive on shared CI hosts (the
    # committed baseline was recorded on an idle machine), so the
    # gate takes the best of up to three attempts rather than
    # failing on one slow sample.
    local attempt wheel_ok=0
    for attempt in 1 2 3; do
        build/bench/engine_throughput --quick --out="$out/bench.json" \
            --parallel-out="$out/parallel.json"
        if python3 - "$out/bench.json" BENCH_engine.json <<'EOF'
import json, sys
now = json.load(open(sys.argv[1]))
committed = json.load(open(sys.argv[2]))
wheel, base = now["wheelEventsPerSec"], committed["wheelEventsPerSec"]
print(f"wheel: {wheel:.3g} ev/s now vs {base:.3g} ev/s committed")
assert wheel >= 0.75 * base, \
    f"wheel throughput regressed >25%: {wheel:.3g} < 0.75 * {base:.3g}"
assert now["speedup"] >= 2.0, \
    f"wheel no longer >=2x the priority-queue baseline: {now['speedup']:.2f}x"
print(f"perf OK: {now['speedup']:.2f}x vs baseline pq")
EOF
        then
            wheel_ok=1
            break
        fi
        echo "perf-smoke: wheel gate missed on attempt $attempt, retrying"
    done
    if [ "$wheel_ok" -ne 1 ]; then
        echo "perf-smoke: wheel gate failed on all attempts" >&2
        return 1
    fi

    # The parallel-backend gate needs real cores: conservative windows
    # cannot speed anything up on a 1-core host, so each scaling
    # target is enforced only where the hardware can deliver it
    # (speedup >= 1.0x at 2 threads on >= 2 cores, >= 2.5x at
    # 8 threads on >= 8 cores). The regression bound vs the committed
    # BENCH_parallel.json applies regardless of core count.
    python3 - "$out/parallel.json" BENCH_parallel.json "$(nproc)" <<'EOF'
import json, sys
now = json.load(open(sys.argv[1]))
committed = json.load(open(sys.argv[2]))
cores = int(sys.argv[3])
for threads in sorted(now["threads"], key=int):
    t_now = now["threads"][threads]
    t_base = committed["threads"].get(threads)
    if t_base is None:
        continue
    print(f"parallel x{threads}: {t_now:.3g} ev/s now vs "
          f"{t_base:.3g} committed, {now['speedups'][threads]:.2f}x "
          f"vs serial wheel")
    assert t_now >= 0.75 * t_base, \
        f"parallel throughput regressed >25% at {threads} threads: " \
        f"{t_now:.3g} < 0.75 * {t_base:.3g}"
for threads, floor in (("2", 1.0), ("8", 2.5)):
    s = now["speedups"].get(threads)
    if s is None:
        continue
    if cores < int(threads):
        print(f"parallel gate: {cores} core(s) < {threads}; "
              f"{floor}x target at {threads} threads not enforced")
        continue
    assert s >= floor, \
        f"parallel backend below {floor}x at {threads} threads: {s:.2f}x"
    print(f"parallel gate OK: {s:.2f}x >= {floor}x at {threads} threads")
EOF
}

run_chaos() {
    echo "=== chaos: fault sweep + fault-free golden check ==="
    cmake -B build -S . >/dev/null
    cmake --build build -j "$JOBS" --target chaos_sweep sim_harness \
        table_3_1
    local out
    out="$(mktemp -d)"
    trap 'rm -rf "$out"' RETURN

    # 4 scenarios x 2 seeds = 8 faulty runs, each checked against the
    # fault-free oracle image, plus the watchdog partition demo.
    build/bench/chaos_sweep --nodes=8 --seeds=2

    # The fault machinery must be invisible when disabled: bench output
    # stays byte-identical to the committed goldens on every backend.
    local flags
    for flags in "--engine=wheel" "--engine=heap" \
                 "--engine=parallel --threads=4"; do
        # shellcheck disable=SC2086
        build/bench/table_3_1 $flags > "$out/table.txt"
        diff golden/table_3_1.txt "$out/table.txt"
        # shellcheck disable=SC2086
        build/bench/sim_harness --nodes=16 $flags > "$out/harness.txt"
        diff golden/sim_harness_16.txt "$out/harness.txt"
    done
    echo "fault-free path byte-identical to golden/ on every backend"
}

run_recovery() {
    echo "=== recovery: node-crash chaos matrix ==="
    cmake -B build -S . >/dev/null
    cmake --build build -j "$JOBS" --target chaos_sweep test_recovery
    local out
    out="$(mktemp -d)"
    trap 'rm -rf "$out"' RETURN

    # The recovery unit tests carry the fine-grained assertions:
    # dead-node purge, surviving-replica consistency, degraded serving
    # of lost pages, and the wheel/heap/parallel image identity.
    build/tests/test_recovery

    # Crash the end node of a 1x8 line mid-run on each backend. Every
    # run self-checks (survivor image vs oracle, replica consistency),
    # and the combined post-recovery image hash — memory words, elapsed
    # cycles, and epoch outcomes — must be byte-identical across
    # backends.
    local combo
    for combo in "wheel:0" "parallel:2"; do
        local eng="${combo%%:*}" thr="${combo##*:}"
        local flags="--engine=$eng"
        if [ "$thr" != 0 ]; then flags="$flags --threads=$thr"; fi
        echo "--- fail-stop sweep: $eng threads=$thr"
        # shellcheck disable=SC2086
        build/bench/chaos_sweep --nodes=8 --seeds=2 --kill-node=7@2000 \
            $flags | tee "$out/sweep_$eng.txt"
        grep "fail-stop image hash" "$out/sweep_$eng.txt" \
            > "$out/hash_$eng.txt"
    done
    diff "$out/hash_wheel.txt" "$out/hash_parallel.txt"
    echo "post-recovery image byte-identical across backends"
}

run_tsan() {
    echo "=== tsan: ThreadSanitizer over the parallel engine ==="
    # Probe the toolchain: containers without libtsan should skip, not
    # fail (the conservative backend is still covered by determinism).
    local cxx="${CXX:-c++}"
    if ! echo 'int main(){return 0;}' | "$cxx" -fsanitize=thread -x c++ \
            - -o /dev/null >/dev/null 2>&1; then
        echo "WARNING: $cxx lacks -fsanitize=thread; stage skipped"
        return 0
    fi
    cmake -B build-tsan -S . -DPLUS_TSAN=ON >/dev/null
    cmake --build build-tsan -j "$JOBS" --target test_parallel \
        sim_harness table_3_1

    echo "--- parallel-engine tests under TSan"
    build-tsan/tests/test_parallel

    echo "--- 2/4-thread determinism matrix under TSan"
    local out
    out="$(mktemp -d)"
    trap 'rm -rf "$out"' RETURN
    build-tsan/bench/table_3_1 --engine=wheel > "$out/wheel_table.txt"
    build-tsan/bench/sim_harness --nodes=16 --engine=wheel \
        > "$out/wheel_harness.txt"
    local thr
    for thr in 2 4; do
        echo "--- parallel threads=$thr vs wheel (tsan)"
        build-tsan/bench/table_3_1 --engine=parallel --threads="$thr" \
            > "$out/table.txt"
        diff "$out/wheel_table.txt" "$out/table.txt"
        build-tsan/bench/sim_harness --nodes=16 --engine=parallel \
            --threads="$thr" > "$out/harness.txt"
        diff "$out/wheel_harness.txt" "$out/harness.txt"
    done
    echo "tsan: zero reports, matrix byte-identical"
}

run_prof() {
    echo "=== prof: host-time profiler breakdown + overhead gate ==="
    cmake -B build -S . >/dev/null
    cmake --build build -j "$JOBS" --target engine_throughput
    local out
    out="$(mktemp -d)"
    trap 'rm -rf "$out"' RETURN

    # A profiled parallel run must attribute the wall clock: every
    # thread's {work, barrier, drain, other} rollup sums to ~100 with
    # the named buckets covering >=90%.
    echo "--- parallel breakdown (4 threads)"
    build/bench/engine_throughput --quick --threads=4 \
        --prof-out="$out/prof.json" --out=/dev/null \
        --parallel-out="$out/parallel.json" >/dev/null
    python3 - "$out/prof.json" <<'EOF'
import json, sys
prof = json.load(open(sys.argv[1]))
assert prof["enabled"], "profiler not enabled despite --prof-out"
threads = prof["threads"]
workers = [t for t in threads if t["label"].startswith("worker")]
assert len(workers) == 3, \
    f"expected 3 worker threads in the profile, got {len(workers)}"
for t in threads:
    r = t["rollup"]
    named = r["workPct"] + r["barrierPct"] + r["drainPct"]
    total = named + r["otherPct"]
    assert named >= 90.0, \
        f"{t['label']}: named buckets cover only {named:.1f}% (<90%)"
    assert 99.0 <= total <= 101.0, \
        f"{t['label']}: rollup does not sum to 100: {total:.1f}"
    print(f"{t['label']}: work {r['workPct']:.1f}% / "
          f"barrier {r['barrierPct']:.1f}% / drain {r['drainPct']:.1f}% / "
          f"other {r['otherPct']:.1f}%")
assert prof["windows"]["count"] > 0, "no conservative windows recorded"
print(f"windows: {prof['windows']['count']} "
      f"(width mean {prof['windows']['widthMean']:.2f} cycles)")
EOF

    # Overhead gate: the serial wheel micro benchmark with profiling
    # enabled must stay within 3% of the disabled run. The bench
    # interleaves the two configurations in-process (best of 5 each) so
    # host noise — frequency scaling, a shared CI box — biases both
    # sides the same way instead of masquerading as overhead.
    echo "--- overhead gate (profiler off vs on, in-process best of 5)"
    build/bench/engine_throughput --prof-overhead \
        --out="$out/overhead.json"
    python3 - "$out/overhead.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
print(f"wheel micro: {d['offEventsPerSec']:.3g} ev/s off, "
      f"{d['onEventsPerSec']:.3g} ev/s on "
      f"({d['overheadPct']:.2f}% overhead)")
assert d["overheadPct"] <= 3.0, \
    f"profiler-on overhead exceeds 3%: {d['overheadPct']:.2f}%"
print("prof overhead gate OK")
EOF
}

case "$STAGE" in
    tier1)       run_tier1 ;;
    sanitize)    run_sanitize ;;
    tidy)        run_tidy ;;
    lint)        run_lint ;;
    format)      run_format ;;
    trace)       run_trace ;;
    determinism) run_determinism ;;
    protocols)   run_protocols ;;
    perf-smoke)  run_perf_smoke ;;
    chaos)       run_chaos ;;
    recovery)    run_recovery ;;
    tsan)        run_tsan ;;
    prof)        run_prof ;;
    all)         run_tier1; run_sanitize; run_tidy; run_lint; run_format
                 run_trace; run_determinism; run_protocols; run_perf_smoke
                 run_chaos; run_recovery; run_tsan; run_prof ;;
    *)
        echo "unknown stage '$STAGE'" \
             "(want tier1|sanitize|tidy|lint|format|trace|determinism|" \
             "protocols|perf-smoke|chaos|recovery|tsan|prof|all)" >&2
        exit 2
        ;;
esac

echo "ci: $STAGE OK"
