#!/usr/bin/env bash
# Continuous-integration driver for the PLUS simulator.
#
#   1. tier-1:     regular build + full test suite
#   2. sanitize:   ASan+UBSan build (PLUS_SANITIZE=ON) + full test suite
#   3. tidy:       clang-tidy over src/ (skipped when the tool is absent)
#
# Usage: scripts/ci.sh [tier1|sanitize|tidy|all]   (default: all)

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
STAGE="${1:-all}"

run_tier1() {
    echo "=== tier-1: build + ctest ==="
    cmake -B build -S . >/dev/null
    cmake --build build -j "$JOBS"
    ctest --test-dir build --output-on-failure -j "$JOBS"
}

run_sanitize() {
    echo "=== sanitize: ASan+UBSan build + ctest ==="
    cmake -B build-asan -S . -DPLUS_SANITIZE=ON >/dev/null
    cmake --build build-asan -j "$JOBS"
    # abort on the first sanitizer report so ctest marks the test failed
    ASAN_OPTIONS="abort_on_error=1:detect_leaks=1" \
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
        ctest --test-dir build-asan --output-on-failure -j "$JOBS"
}

run_tidy() {
    echo "=== tidy: clang-tidy over src/ ==="
    if ! command -v clang-tidy >/dev/null 2>&1; then
        echo "clang-tidy not installed; skipping (non-fatal)"
        return 0
    fi
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    find src -name '*.cpp' -print0 |
        xargs -0 -n 8 -P "$JOBS" clang-tidy -p build --quiet
}

case "$STAGE" in
    tier1)    run_tier1 ;;
    sanitize) run_sanitize ;;
    tidy)     run_tidy ;;
    all)      run_tier1; run_sanitize; run_tidy ;;
    *)
        echo "unknown stage '$STAGE' (want tier1|sanitize|tidy|all)" >&2
        exit 2
        ;;
esac

echo "ci: $STAGE OK"
