#!/usr/bin/env bash
# Continuous-integration driver for the PLUS simulator.
#
#   1. tier-1:     regular build + full test suite
#   2. sanitize:   ASan+UBSan build (PLUS_SANITIZE=ON) + full test suite
#   3. tidy:       clang-tidy over src/ (skipped when the tool is absent)
#   4. trace:      telemetry smoke test — run a 4-node workload with
#                  --trace-out/--stats-out, validate both as JSON, and
#                  check that tracing leaves bench output bit-identical
#   5. determinism: every engine backend must produce byte-for-byte
#                  identical bench output — the full matrix is
#                  {wheel, heap, parallel x 2 threads, parallel x 4
#                  threads} diffed against the wheel run
#   6. perf-smoke: engine_throughput --quick, fail if the wheel's
#                  throughput regressed >25% vs the committed
#                  BENCH_engine.json or the speedup target is missed;
#                  on >=4-core hosts also gate the parallel backend
#                  against BENCH_parallel.json (>=2x at 4 threads,
#                  fail on >25% regression)
#   7. chaos:      chaos_sweep under fixed fault seeds (drop 1%, dup 1%,
#                  corrupt 0.5%, mixed + transient link kill) — every
#                  run must reproduce the fault-free memory image, and
#                  with the injector disabled bench output must stay
#                  byte-identical to the committed golden/ files under
#                  both engine backends
#
# Usage: scripts/ci.sh [tier1|sanitize|tidy|trace|determinism|perf-smoke|
#                       chaos|all]  (default: all)

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
STAGE="${1:-all}"

run_tier1() {
    echo "=== tier-1: build + ctest ==="
    cmake -B build -S . >/dev/null
    cmake --build build -j "$JOBS"
    ctest --test-dir build --output-on-failure -j "$JOBS"
}

run_sanitize() {
    echo "=== sanitize: ASan+UBSan build + ctest ==="
    cmake -B build-asan -S . -DPLUS_SANITIZE=ON >/dev/null
    cmake --build build-asan -j "$JOBS"
    # abort on the first sanitizer report so ctest marks the test failed
    ASAN_OPTIONS="abort_on_error=1:detect_leaks=1" \
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
        ctest --test-dir build-asan --output-on-failure -j "$JOBS"
}

run_tidy() {
    echo "=== tidy: clang-tidy over src/ ==="
    if ! command -v clang-tidy >/dev/null 2>&1; then
        echo "clang-tidy not installed; skipping (non-fatal)"
        return 0
    fi
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    find src -name '*.cpp' -print0 |
        xargs -0 -n 8 -P "$JOBS" clang-tidy -p build --quiet
}

run_trace() {
    echo "=== trace: telemetry export smoke test ==="
    cmake -B build -S . >/dev/null
    cmake --build build -j "$JOBS" --target sim_harness table_3_1
    local out
    out="$(mktemp -d)"
    trap 'rm -rf "$out"' RETURN

    build/bench/sim_harness --nodes=4 \
        --trace-out="$out/trace.json" --stats-out="$out/stats.json"
    python3 - "$out/trace.json" "$out/stats.json" <<'EOF'
import json, sys
trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
assert events, "empty trace"
assert any(e.get("ph") == "s" for e in events), "no flow events"
assert any(e.get("pid", 0) >= 1000 for e in events), "no link tracks"
stats = json.load(open(sys.argv[2]))
assert stats["metrics"]["counters"], "no counters"
assert stats["traffic"]["perLink"], "no link traffic"
print(f"trace OK: {len(events)} events")
EOF

    # Telemetry must never perturb the simulation.
    build/bench/table_3_1 > "$out/plain.txt"
    build/bench/table_3_1 --trace-out="$out/t.json" \
        --stats-out="$out/s.json" > "$out/traced.txt"
    diff "$out/plain.txt" "$out/traced.txt"
    echo "bench output bit-identical with telemetry enabled"
}

run_determinism() {
    echo "=== determinism: backend matrix, byte-for-byte ==="
    cmake -B build -S . >/dev/null
    cmake --build build -j "$JOBS" --target sim_harness table_3_1
    local out
    out="$(mktemp -d)"
    trap 'rm -rf "$out"' RETURN

    build/bench/table_3_1 --engine=wheel > "$out/wheel_table.txt"
    build/bench/sim_harness --nodes=16 --engine=wheel \
        > "$out/wheel_harness.txt"

    # Every other backend/thread-count combination must reproduce the
    # wheel output exactly. The parallel runs force --threads so the
    # conservative engine really spins up worker domains even on
    # single-core CI hosts (oversubscribed but functionally identical).
    local combo
    for combo in "heap:0" "parallel:2" "parallel:4"; do
        local eng="${combo%%:*}" thr="${combo##*:}"
        local flags="--engine=$eng"
        if [ "$thr" != 0 ]; then flags="$flags --threads=$thr"; fi
        echo "--- $eng threads=$thr vs wheel"
        # shellcheck disable=SC2086
        build/bench/table_3_1 $flags > "$out/table.txt"
        diff "$out/wheel_table.txt" "$out/table.txt"
        # shellcheck disable=SC2086
        build/bench/sim_harness --nodes=16 $flags > "$out/harness.txt"
        diff "$out/wheel_harness.txt" "$out/harness.txt"
    done
    echo "all engine backends are cycle-for-cycle identical"
}

run_perf_smoke() {
    echo "=== perf-smoke: engine throughput vs committed baseline ==="
    cmake -B build -S . >/dev/null
    cmake --build build -j "$JOBS" --target engine_throughput
    local out
    out="$(mktemp -d)"
    trap 'rm -rf "$out"' RETURN

    build/bench/engine_throughput --quick --out="$out/bench.json" \
        --parallel-out="$out/parallel.json"
    python3 - "$out/bench.json" BENCH_engine.json <<'EOF'
import json, sys
now = json.load(open(sys.argv[1]))
committed = json.load(open(sys.argv[2]))
wheel, base = now["wheelEventsPerSec"], committed["wheelEventsPerSec"]
print(f"wheel: {wheel:.3g} ev/s now vs {base:.3g} ev/s committed")
assert wheel >= 0.75 * base, \
    f"wheel throughput regressed >25%: {wheel:.3g} < 0.75 * {base:.3g}"
assert now["speedup"] >= 2.0, \
    f"wheel no longer >=2x the priority-queue baseline: {now['speedup']:.2f}x"
print(f"perf OK: {now['speedup']:.2f}x vs baseline pq")
EOF

    # The parallel-backend gate needs real cores: conservative windows
    # cannot speed anything up on a 1-core host, so only enforce the
    # scaling target where the hardware can deliver it. The regression
    # bound vs the committed BENCH_parallel.json applies regardless.
    python3 - "$out/parallel.json" BENCH_parallel.json "$(nproc)" <<'EOF'
import json, sys
now = json.load(open(sys.argv[1]))
committed = json.load(open(sys.argv[2]))
cores = int(sys.argv[3])
t4_now = now["threads"].get("4")
t4_base = committed["threads"].get("4")
if t4_now is None or t4_base is None:
    print("parallel gate: no 4-thread datapoint; skipping")
    sys.exit(0)
print(f"parallel x4: {t4_now:.3g} ev/s now vs {t4_base:.3g} committed, "
      f"{now['speedups']['4']:.2f}x vs serial wheel ({cores} cores)")
assert t4_now >= 0.75 * t4_base, \
    f"parallel throughput regressed >25%: {t4_now:.3g} < 0.75 * {t4_base:.3g}"
if cores >= 4:
    assert now["speedups"]["4"] >= 2.0, \
        f"parallel backend below 2x at 4 threads: {now['speedups']['4']:.2f}x"
    print("parallel gate OK: >=2x at 4 threads")
else:
    print(f"parallel gate: only {cores} core(s); speedup target not "
          "enforced (needs >=4)")
EOF
}

run_chaos() {
    echo "=== chaos: fault sweep + fault-free golden check ==="
    cmake -B build -S . >/dev/null
    cmake --build build -j "$JOBS" --target chaos_sweep sim_harness \
        table_3_1
    local out
    out="$(mktemp -d)"
    trap 'rm -rf "$out"' RETURN

    # 4 scenarios x 2 seeds = 8 faulty runs, each checked against the
    # fault-free oracle image, plus the watchdog partition demo.
    build/bench/chaos_sweep --nodes=8 --seeds=2

    # The fault machinery must be invisible when disabled: bench output
    # stays byte-identical to the committed goldens on every backend.
    local flags
    for flags in "--engine=wheel" "--engine=heap" \
                 "--engine=parallel --threads=4"; do
        # shellcheck disable=SC2086
        build/bench/table_3_1 $flags > "$out/table.txt"
        diff golden/table_3_1.txt "$out/table.txt"
        # shellcheck disable=SC2086
        build/bench/sim_harness --nodes=16 $flags > "$out/harness.txt"
        diff golden/sim_harness_16.txt "$out/harness.txt"
    done
    echo "fault-free path byte-identical to golden/ on every backend"
}

case "$STAGE" in
    tier1)       run_tier1 ;;
    sanitize)    run_sanitize ;;
    tidy)        run_tidy ;;
    trace)       run_trace ;;
    determinism) run_determinism ;;
    perf-smoke)  run_perf_smoke ;;
    chaos)       run_chaos ;;
    all)         run_tier1; run_sanitize; run_tidy; run_trace
                 run_determinism; run_perf_smoke; run_chaos ;;
    *)
        echo "unknown stage '$STAGE'" \
             "(want tier1|sanitize|tidy|trace|determinism|perf-smoke|" \
             "chaos|all)" >&2
        exit 2
        ;;
esac

echo "ci: $STAGE OK"
